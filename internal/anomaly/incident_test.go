package anomaly

import (
	"testing"
	"time"

	"perfsight/internal/core"
)

const sec = int64(time.Second)

func TestCorrelatorFoldsSameRootCause(t *testing.T) {
	c := NewCorrelator(CorrelatorConfig{Window: 30 * time.Second, ResolveAfter: 10 * time.Second})
	id1, opened := c.Observe("resource:memory-bandwidth", "t1", []core.ElementID{"m0/vm0/tun"}, 1*sec, 11, "first", 2*sec, 101)
	if !opened || id1 == 0 {
		t.Fatalf("first event: id=%d opened=%v", id1, opened)
	}
	id2, opened := c.Observe("resource:memory-bandwidth", "t1", []core.ElementID{"m0/vm1/tun"}, 5*sec, 12, "second", 0, 101)
	if opened || id2 != id1 {
		t.Fatalf("second event opened a new incident: id=%d opened=%v", id2, opened)
	}
	// A different root cause is its own incident.
	id3, opened := c.Observe("m0/vm-px/app", "t2", nil, 6*sec, 13, "chain", 0, 0)
	if !opened || id3 == id1 {
		t.Fatalf("different root cause folded: id=%d opened=%v", id3, opened)
	}
	if c.OpenCount() != 2 {
		t.Fatalf("OpenCount = %d, want 2", c.OpenCount())
	}

	in, ok := c.Get(id1)
	if !ok {
		t.Fatal("Get lost the incident")
	}
	if in.State != StateOpen || in.FirstSeen != 1*sec || in.LastSeen != 5*sec {
		t.Fatalf("timeline = %+v", in)
	}
	if in.EventCount != 2 || len(in.EventSeqs) != 2 || in.EventSeqs[0] != 11 || in.EventSeqs[1] != 12 {
		t.Fatalf("event seqs = %+v", in)
	}
	if len(in.Tenants) != 1 || in.Tenants[0] != "t1" {
		t.Fatalf("tenants = %v", in.Tenants)
	}
	if len(in.Elements) != 2 {
		t.Fatalf("elements = %v", in.Elements)
	}
	if in.Summary != "second" {
		t.Fatalf("summary = %q, want latest event's", in.Summary)
	}
	if in.DetectionNS != 2*sec {
		t.Fatalf("DetectionNS = %d, want the opening event's", in.DetectionNS)
	}
	// Both events referenced trace 101; the incident keeps it once.
	if len(in.TraceIDs) != 1 || in.TraceIDs[0] != 101 {
		t.Fatalf("trace ids = %v, want [101]", in.TraceIDs)
	}
}

func TestCorrelatorResolvesAfterQuiet(t *testing.T) {
	c := NewCorrelator(CorrelatorConfig{Window: 30 * time.Second, ResolveAfter: 10 * time.Second})
	id, _ := c.Observe("k", "t1", nil, 1*sec, 1, "s", 0, 0)
	if n := c.Tick(5 * sec); n != 0 {
		t.Fatalf("Tick inside quiet period resolved %d", n)
	}
	if n := c.Tick(11 * sec); n != 1 {
		t.Fatalf("Tick past ResolveAfter resolved %d, want 1", n)
	}
	in, ok := c.Get(id)
	if !ok || in.State != StateResolved || in.ResolvedAt != 11*sec {
		t.Fatalf("resolved incident = %+v ok=%v", in, ok)
	}
	if c.OpenCount() != 0 {
		t.Fatalf("OpenCount = %d after resolve", c.OpenCount())
	}
	// A recurrence after resolution is a NEW incident.
	id2, opened := c.Observe("k", "t1", nil, 20*sec, 2, "s", 0, 0)
	if !opened || id2 == id {
		t.Fatalf("recurrence reopened history: id=%d opened=%v", id2, opened)
	}
}

func TestCorrelatorLapsedWindowOpensFresh(t *testing.T) {
	c := NewCorrelator(CorrelatorConfig{Window: 10 * time.Second, ResolveAfter: 5 * time.Second})
	id1, _ := c.Observe("k", "t1", nil, 1*sec, 1, "s", 0, 0)
	// No Tick ran (e.g. sweeps stalled), but the next same-key event is
	// far outside the window: the stale incident resolves and a fresh one
	// opens rather than stretching one incident across the gap.
	id2, opened := c.Observe("k", "t1", nil, 60*sec, 2, "s", 0, 0)
	if !opened || id2 == id1 {
		t.Fatalf("late burst joined the lapsed incident: id=%d opened=%v", id2, opened)
	}
	in, _ := c.Get(id1)
	if in.State != StateResolved {
		t.Fatalf("lapsed incident state = %s", in.State)
	}
}

func TestCorrelatorListAndEviction(t *testing.T) {
	c := NewCorrelator(CorrelatorConfig{Window: 10 * time.Second, ResolveAfter: time.Second, MaxResolved: 2})
	for i := int64(0); i < 4; i++ {
		c.Observe("k", "t1", nil, i*20*sec, i+1, "s", 0, 0)
		c.Tick(i*20*sec + 2*sec)
	}
	c.Observe("open-one", "t1", nil, 100*sec, 9, "s", 0, 0)

	all := c.List("", 0)
	if len(all) != 3 { // 1 open + 2 retained resolved (2 evicted)
		t.Fatalf("List(all) = %d incidents, want 3", len(all))
	}
	if all[0].ID <= all[1].ID {
		t.Fatalf("List not newest-first: %v then %v", all[0].ID, all[1].ID)
	}
	if open := c.List(StateOpen, 0); len(open) != 1 || open[0].RootCause != "open-one" {
		t.Fatalf("List(open) = %+v", open)
	}
	if res := c.List(StateResolved, 0); len(res) != 2 {
		t.Fatalf("List(resolved) = %d, want 2 (MaxResolved)", len(res))
	}
	if lim := c.List("", 1); len(lim) != 1 {
		t.Fatalf("List(limit 1) = %d", len(lim))
	}
	// Evicted incidents are gone.
	if _, ok := c.Get(1); ok {
		t.Fatal("evicted incident still retrievable")
	}
}

func TestCorrelatorSnapshotsAreCopies(t *testing.T) {
	c := NewCorrelator(CorrelatorConfig{})
	id, _ := c.Observe("k", "t1", []core.ElementID{"e1"}, 1*sec, 1, "s", 0, 0)
	in, _ := c.Get(id)
	in.Elements[0] = "mutated"
	in.Summary = "mutated"
	again, _ := c.Get(id)
	if again.Elements[0] != "e1" || again.Summary != "s" {
		t.Fatalf("snapshot mutation leaked into correlator: %+v", again)
	}
}
