package anomaly

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"perfsight/internal/core"
	"perfsight/internal/history"
)

// benchSweep is a representative quiescent fleet sweep: elems elements,
// each carrying the full counter-and-gauge set an agent returns.
func benchSweep(elems int) map[core.ElementID]core.Record {
	recs := make(map[core.ElementID]core.Record, elems)
	for e := 0; e < elems; e++ {
		eid := core.ElementID("m0/el" + strconv.Itoa(e))
		recs[eid] = core.Record{Element: eid, Attrs: []core.Attr{
			{ID: core.AttrKind, Value: float64(core.KindVSwitch)},
			{ID: core.AttrRxPackets, Value: 0},
			{ID: core.AttrRxBytes, Value: 0},
			{ID: core.AttrTxPackets, Value: 0},
			{ID: core.AttrTxBytes, Value: 0},
			{ID: core.AttrDropPackets, Value: 0},
			{ID: core.AttrQueueLen, Value: 3},
		}}
	}
	return recs
}

// advance moves the sweep one cadence forward: timestamps advance,
// counters climb at a steady (in-band) rate, gauges hold.
func advance(recs map[core.ElementID]core.Record, ts int64) {
	for eid, rec := range recs {
		rec.Timestamp = ts
		for i := range rec.Attrs {
			if core.AttrSemanticsOf(rec.Attrs[i].ID) == core.SemCounter {
				rec.Attrs[i].Value += 1000
			}
		}
		recs[eid] = rec
	}
}

// TestEvalAllocBudget pins the steady-state cost of one pipeline
// evaluation pass against a checked-in budget: detector state lives in
// preallocated per-series structs, so evaluating a quiescent fleet must
// not allocate. CI fails when a change regresses past it (see make
// bench-anomaly).
func TestEvalAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/eval_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parse budget: %v", err)
	}
	p := NewPipeline(history.New(history.Config{}), history.NewJournal(16), Config{})
	recs := benchSweep(16)
	ts := int64(0)
	// Warm: allocate every series state and get past the baselines'
	// cold start so the steady-state path is fully judging.
	for i := 0; i < 20; i++ {
		ts += 1e9
		advance(recs, ts)
		p.AfterSweep(testTenant, recs, nil)
	}
	got := testing.AllocsPerRun(500, func() {
		ts += 1e9
		advance(recs, ts)
		p.AfterSweep(testTenant, recs, nil)
	})
	t.Logf("steady-state AfterSweep allocs/op = %.2f (budget %s)", got, strings.TrimSpace(string(raw)))
	if got > budget {
		t.Fatalf("AfterSweep allocs/op = %.2f exceeds budget %.2f (testdata/eval_alloc_budget.txt)", got, budget)
	}
}

// BenchmarkPipelineEval measures one full evaluation pass over a
// quiescent 16-element fleet (the per-sweep overhead the pipeline adds
// to monitoring).
func BenchmarkPipelineEval(b *testing.B) {
	p := NewPipeline(history.New(history.Config{}), history.NewJournal(16), Config{})
	recs := benchSweep(16)
	ts := int64(0)
	for i := 0; i < 20; i++ {
		ts += 1e9
		advance(recs, ts)
		p.AfterSweep(testTenant, recs, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += 1e9
		advance(recs, ts)
		p.AfterSweep(testTenant, recs, nil)
	}
}

// BenchmarkPipelineEvalPerSeries scales the fleet to show the per-series
// evaluation cost stays flat.
func BenchmarkPipelineEvalPerSeries(b *testing.B) {
	for _, elems := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("elems=%d", elems), func(b *testing.B) {
			p := NewPipeline(history.New(history.Config{}), history.NewJournal(16), Config{})
			recs := benchSweep(elems)
			ts := int64(0)
			for i := 0; i < 20; i++ {
				ts += 1e9
				advance(recs, ts)
				p.AfterSweep(testTenant, recs, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts += 1e9
				advance(recs, ts)
				p.AfterSweep(testTenant, recs, nil)
			}
		})
	}
}
