package anomaly

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/history"
	"perfsight/internal/telemetry"
)

// seriesClass says which detector a series gets, decided once from the
// AttrID schema when the series is first seen.
type seriesClass uint8

const (
	classSkip     seriesClass = iota // config attrs: nothing to detect
	classDropRate                    // drop/error counters: rate vs SLO threshold
	classCounter                     // other counters: rate fed into an EWMA baseline
	classGauge                       // gauges: value fed into an EWMA baseline
)

// schemaClasses maps every schema attribute to its detector class at
// package init, so the hot path classifies with one array index.
var schemaClasses = func() [core.SchemaMax + 1]seriesClass {
	var t [core.SchemaMax + 1]seriesClass
	for id := core.AttrID(1); id <= core.SchemaMax; id++ {
		t[id] = classify(id)
	}
	return t
}()

// classify decides a detector class from the attribute's declared
// schema: drop/error counters get the SLO rate detector (the original
// Watcher signal), remaining counters get a rate baseline, gauges get a
// value baseline, and static config is skipped.
func classify(id core.AttrID) seriesClass {
	switch core.AttrSemanticsOf(id) {
	case core.SemConfig:
		return classSkip
	case core.SemCounter:
		name := core.AttrName(id)
		if strings.Contains(name, "drop") || strings.Contains(name, "err") {
			return classDropRate
		}
		return classCounter
	default:
		return classGauge
	}
}

// seriesKey identifies one monitored (tenant, element, attr) series.
type seriesKey struct {
	Tenant  core.TenantID
	Element core.ElementID
	Attr    core.AttrID
}

// seriesState is one series' detector state. Counters always difference
// through the rate detector; baselines judge the resulting rate (or the
// raw gauge value).
type seriesState struct {
	class    seriesClass
	rate     RateDetector
	ewma     EWMADetector
	lastGood int64 // ts of the last sample judged healthy (or unjudged)
}

// Config shapes the pipeline.
type Config struct {
	// SLO is the per-tenant threshold table.
	SLO SLOConfig
	// MaxGap re-seeds a series' detectors instead of judging across a
	// sweep blackout longer than this. Default 30s.
	MaxGap time.Duration
	// Correlator bounds incident grouping.
	Correlator CorrelatorConfig
}

func (c Config) withDefaults() Config {
	if c.MaxGap <= 0 {
		c.MaxGap = 30 * time.Second
	}
	return c
}

// Pipeline is the always-on anomaly detector: wired as the Monitor's
// AfterSweep hook, it evaluates every swept series against its baseline
// and the tenant's SLO, automatically diagnoses the surrounding window
// from the history store on a trigger (zero agent queries), journals the
// evidence, and correlates events into incidents.
type Pipeline struct {
	Store     *history.Store
	Journal   *history.Journal
	Incidents *Correlator
	// Net resolves a tenant's virtual network so triggered diagnoses
	// include Algorithm 2 pruning; nil skips chain diagnosis.
	Net func(core.TenantID) *core.VirtualNet

	// TraceOf resolves the distributed trace id of the most recent sweep
	// query that touched an element (Controller.LastTraceID); nil leaves
	// pull-path events untraced. Push-path events carry their frame's
	// trace id through ObserveTraced instead.
	TraceOf func(core.ElementID) uint64

	// Spans, when set, pins every incident-referenced trace in the span
	// store so its waterfall outlives head sampling for the
	// investigation.
	Spans *telemetry.SpanStore

	cfg Config

	mu        sync.Mutex
	series    map[seriesKey]*seriesState
	lastFired map[core.TenantID]int64
	slo       map[core.TenantID]SLO // resolved per-tenant cache

	tel atomic.Pointer[pipelineMetrics]
}

// NewPipeline builds a pipeline evaluating store sweeps into journal.
func NewPipeline(store *history.Store, journal *history.Journal, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	return &Pipeline{
		Store:     store,
		Journal:   journal,
		Incidents: NewCorrelator(cfg.Correlator),
		cfg:       cfg,
		series:    make(map[seriesKey]*seriesState),
		lastFired: make(map[core.TenantID]int64),
		slo:       make(map[core.TenantID]SLO),
	}
}

// Config returns the pipeline's effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// sloFor resolves (and caches) the tenant's effective SLO. Callers hold
// p.mu.
func (p *Pipeline) sloFor(tid core.TenantID) SLO {
	s, ok := p.slo[tid]
	if !ok {
		s = p.cfg.SLO.For(tid)
		p.slo[tid] = s
	}
	return s
}

// violation is the worst SLO breach found in one sweep.
type violation struct {
	elem     core.ElementID
	attr     core.AttrID
	detector string
	value    float64 // the offending rate or gauge value
	baseline float64 // EWMA baseline (0 for the drop-rate detector)
	severity float64 // multiples of the threshold/band; >= 1 fires
	ts       int64
	lastGood int64
	dropRate float64 // set when the drop-rate detector fired
}

// Detector names carried on journal events.
const (
	DetectorDropRate = "drop-rate"
	DetectorBaseline = "ewma-baseline"
)

// evalCtx is one evaluation pass's resolved context (SLO, EWMA config)
// plus its accumulators: the worst violation seen and telemetry tallies.
// Built under p.mu and consumed by evalRecord calls holding p.mu.
type evalCtx struct {
	slo    SLO
	ecfg   EWMAConfig
	maxGap int64

	worst         violation
	evals, resets uint64
	now           int64  // newest record timestamp seen this pass
	traceID       uint64 // push path: the frame's trace; 0 = resolve via TraceOf
}

// beginEval resolves the tenant's evaluation context. Callers hold
// p.mu. Returned by value so the hot path keeps it on the stack (the
// eval alloc budget is zero).
func (p *Pipeline) beginEval(tid core.TenantID) evalCtx {
	slo := p.sloFor(tid)
	return evalCtx{
		slo:    slo,
		maxGap: int64(p.cfg.MaxGap),
		ecfg: EWMAConfig{
			Alpha:       0.25,
			MinSamples:  slo.MinSamples,
			Bands:       slo.Bands,
			RelFloor:    0.15,
			Persistence: slo.Persistence,
		},
	}
}

// evalRecord runs one record through every attached detector, folding
// any violation into ec.worst. Callers hold p.mu. All timing is record
// clock: violations carry the record's own timestamp, never wall time,
// so detection latency is invariant to how late the record arrived.
func (p *Pipeline) evalRecord(tid core.TenantID, id core.ElementID, rec core.Record, ec *evalCtx) {
	if rec.Timestamp > ec.now {
		ec.now = rec.Timestamp
	}
	for _, a := range rec.Attrs {
		st, cls := p.stateFor(tid, id, a.ID)
		if cls == classSkip {
			continue
		}
		ec.evals++
		prevTS := st.rate.LastTS()
		switch cls {
		case classDropRate:
			rate, rst := st.rate.Eval(rec.Timestamp, a.Value, ec.maxGap)
			if rst != RateOK {
				if rst == RateReset {
					ec.resets++
				}
				st.lastGood = rec.Timestamp
				continue
			}
			if rate >= ec.slo.DropRatePPS && ec.slo.DropRatePPS > 0 {
				sev := rate / ec.slo.DropRatePPS
				if sev > ec.worst.severity {
					ec.worst = violation{
						elem: id, attr: a.ID, detector: DetectorDropRate,
						value: rate, severity: sev, ts: rec.Timestamp,
						lastGood: prevTS, dropRate: rate,
					}
				}
			} else {
				st.lastGood = rec.Timestamp
			}
		case classCounter, classGauge:
			x := a.Value
			if cls == classCounter {
				r, rst := st.rate.Eval(rec.Timestamp, a.Value, ec.maxGap)
				if rst != RateOK {
					if rst == RateReset {
						ec.resets++
					}
					if rst == RateGap || rst == RateReset {
						st.ewma.Reset() // re-learn the baseline
					}
					st.lastGood = rec.Timestamp
					continue
				}
				x = r
			}
			if ec.slo.DisableBaselines {
				st.lastGood = rec.Timestamp
				continue
			}
			v := st.ewma.Eval(x, ec.ecfg)
			if !v.Out {
				st.lastGood = rec.Timestamp
				continue
			}
			if v.Trigger && v.Deviation > ec.worst.severity {
				ec.worst = violation{
					elem: id, attr: a.ID, detector: DetectorBaseline,
					value: x, baseline: v.Baseline, severity: v.Deviation,
					ts: rec.Timestamp, lastGood: st.lastGood,
				}
			}
		}
	}
}

// finishEval applies the cooldown gate, fires the diagnosis if the pass
// found a triggering violation, and ticks incident resolution. Called
// WITHOUT p.mu (it takes and releases it for the gate).
func (p *Pipeline) finishEval(tid core.TenantID, ec *evalCtx) {
	p.mu.Lock()
	fired := p.lastFired[tid]
	cooled := ec.worst.ts-fired >= int64(ec.slo.Cooldown)
	trigger := ec.worst.severity >= 1 && (fired == 0 || cooled)
	suppressed := ec.worst.severity >= 1 && !trigger
	if trigger {
		p.lastFired[tid] = ec.worst.ts
	}
	p.mu.Unlock()

	if m := p.tel.Load(); m != nil {
		m.evals.Add(ec.evals)
		m.resets.Add(ec.resets)
		if suppressed {
			m.suppressions.Inc()
		}
	}
	if trigger {
		traceID := ec.traceID
		if traceID == 0 && p.TraceOf != nil {
			// Pull path: the trace of the sweep query that gathered the
			// violating element's records.
			traceID = p.TraceOf(ec.worst.elem)
		}
		p.fire(tid, ec.slo, ec.worst, traceID)
	}
	if ec.now > 0 {
		if n := p.Incidents.Tick(ec.now); n > 0 {
			if m := p.tel.Load(); m != nil {
				m.resolved.Add(uint64(n))
			}
		}
	}
}

// AfterSweep is the Monitor hook: evaluate one sweep's records through
// every attached detector, gate through the tenant's SLO, and on
// trigger diagnose-journal-correlate. The err argument (per-machine
// sweep failures) is ignored: partial records still evaluate, and
// missing elements simply do not advance their series.
func (p *Pipeline) AfterSweep(tid core.TenantID, recs map[core.ElementID]core.Record, _ error) {
	p.mu.Lock()
	ec := p.beginEval(tid)
	for id, rec := range recs {
		p.evalRecord(tid, id, rec, &ec)
	}
	p.mu.Unlock()
	p.finishEval(tid, &ec)
}

// Observe is the push-ingest hook: evaluate records the moment they
// arrive off a stream instead of waiting for the next sweep. Detection
// latency therefore tracks the stream cadence, not the sweep period —
// the point of push ingest. Safe to call concurrently with AfterSweep
// (per-series detector state is shared under p.mu, so a machine moving
// between push and fallback-sweep keeps its baselines).
func (p *Pipeline) Observe(tid core.TenantID, recs []core.Record) {
	p.ObserveTraced(tid, recs, 0)
}

// ObserveTraced is Observe carrying the distributed trace id of the
// push frame that delivered recs, so a trigger's event and incident
// reference the exact frame whose records fired them.
func (p *Pipeline) ObserveTraced(tid core.TenantID, recs []core.Record, traceID uint64) {
	if len(recs) == 0 {
		return
	}
	p.mu.Lock()
	ec := p.beginEval(tid)
	ec.traceID = traceID
	for _, rec := range recs {
		p.evalRecord(tid, rec.Element, rec, &ec)
	}
	p.mu.Unlock()
	p.finishEval(tid, &ec)
}

// stateFor returns (creating if needed) one series' detector state.
// Callers hold p.mu. Creation is the only allocating path; quiescent
// steady-state evaluation performs map lookups on existing states only.
func (p *Pipeline) stateFor(tid core.TenantID, eid core.ElementID, attr core.AttrID) (*seriesState, seriesClass) {
	k := seriesKey{tid, eid, attr}
	st := p.series[k]
	if st == nil {
		var cls seriesClass
		if attr <= core.SchemaMax {
			cls = schemaClasses[attr]
		} else {
			cls = classify(attr)
		}
		st = &seriesState{class: cls}
		p.series[k] = st
	}
	return st, st.class
}

// fire runs the automatic diagnosis for one trigger, journals the
// evidence, and folds the event into an incident. traceID, when
// non-zero, links the event (and its incident) to the distributed trace
// of the query or push frame that carried the triggering records, and
// pins that trace in the span store.
func (p *Pipeline) fire(tid core.TenantID, slo SLO, worst violation, traceID uint64) {
	window := time.Duration(slo.Window)
	ev := history.Event{
		TS:       worst.ts,
		Tenant:   tid,
		Element:  worst.elem,
		Detector: worst.detector,
		Attr:     core.AttrName(worst.attr),
		Value:    worst.value,
		Baseline: worst.baseline,
		DropRate: worst.dropRate,
		WindowNS: int64(window),
		TraceID:  traceID,
	}
	if rep, err := p.Store.DiagnoseStack(tid, window, worst.ts); err == nil {
		ev.Stack = rep
		ev.Summary = rep.String()
	}
	if p.Net != nil {
		if net := p.Net(tid); net != nil && len(net.Chains) > 0 {
			if rep, err := p.Store.DiagnoseChain(tid, window, worst.ts, net); err == nil {
				ev.Chain = rep
				if ev.Summary != "" {
					ev.Summary += "; "
				}
				ev.Summary += rep.String()
			}
		}
	}
	if ev.Summary == "" {
		ev.Summary = fmt.Sprintf("%s anomaly at %s (%s=%.0f), window too thin to diagnose",
			worst.detector, worst.elem, ev.Attr, worst.value)
	}

	key, elems := rootKey(&ev)
	latency := int64(0)
	if worst.lastGood > 0 && worst.ts > worst.lastGood {
		latency = worst.ts - worst.lastGood
	}
	id, opened := p.Incidents.Observe(key, tid, elems, worst.ts, 0, ev.Summary, latency, traceID)
	ev.IncidentID = id
	seq := p.Journal.Append(ev)
	p.Incidents.attachSeq(id, seq)
	if p.Spans != nil && traceID != 0 {
		p.Spans.Pin(traceID)
	}

	if m := p.tel.Load(); m != nil {
		m.triggers.Inc()
		if latency > 0 {
			m.latency.Observe(float64(latency))
		}
		if opened {
			m.opened.Inc()
		}
	}
}

// rootKey derives the correlation key and the affected-element set from
// a diagnosed event: the Algorithm 2 root-cause element when a chain
// verdict isolated one, else the Algorithm 1 inferred resource, else the
// detected element itself.
func rootKey(ev *history.Event) (string, []core.ElementID) {
	elems := []core.ElementID{ev.Element}
	if ev.Chain != nil && len(ev.Chain.RootCauses) > 0 {
		elems = append(elems, ev.Chain.RootCauses...)
		return string(ev.Chain.RootCauses[0]), elems
	}
	if ev.Stack != nil && ev.Stack.TotalLoss > 0 {
		for i, e := range ev.Stack.Ranked {
			if i >= 8 || e.Loss == 0 {
				break
			}
			elems = append(elems, e.Element)
		}
		return "resource:" + ev.Stack.Inferred.String(), elems
	}
	return string(ev.Element), elems
}

// attachSeq records a journal sequence number on an incident after the
// event landed (the seq is only known post-append).
func (c *Correlator) attachSeq(id, seq int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, in := range c.open {
		if in.ID == id {
			for i, s := range in.EventSeqs {
				if s == 0 {
					in.EventSeqs[i] = seq
					return
				}
			}
			return
		}
	}
}
