package anomaly

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"perfsight/internal/history"
)

// Server exposes the incident correlator over HTTP on the telemetry mux:
//
//	/incidents?state=open|resolved|all&limit=
//	    incident snapshots, newest first (default state=all).
//	/incidents/{id}
//	    one incident plus the journal events still retained for it.
type Server struct {
	Pipeline *Pipeline
	// Journal resolves an incident's event timeline; nil omits events
	// from the detail view.
	Journal *history.Journal
}

// Register attaches the endpoints to mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/incidents", s.handleList)
	mux.HandleFunc("/incidents/", s.handleGet)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	switch state {
	case "", "all":
		state = ""
	case StateOpen, StateResolved:
	default:
		httpErr(w, http.StatusBadRequest, "bad state %q (want open, resolved or all)", state)
		return
	}
	limit, _ := strconv.Atoi(q.Get("limit"))
	writeJSON(w, map[string]any{
		"incidents": s.Pipeline.Incidents.List(state, limit),
		"open":      s.Pipeline.Incidents.OpenCount(),
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/incidents/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		httpErr(w, http.StatusBadRequest, "bad incident id %q", idStr)
		return
	}
	in, ok := s.Pipeline.Incidents.Get(id)
	if !ok {
		httpErr(w, http.StatusNotFound, "no incident %d", id)
		return
	}
	resp := map[string]any{"incident": in}
	if s.Journal != nil {
		want := make(map[int64]bool, len(in.EventSeqs))
		for _, seq := range in.EventSeqs {
			want[seq] = true
		}
		var evs []history.Event
		for _, ev := range s.Journal.Since(0, 0) {
			if want[ev.Seq] {
				evs = append(evs, ev)
			}
		}
		resp["events"] = evs
	}
	writeJSON(w, resp)
}
