// Package anomaly is PerfSight's always-on detection pipeline: it
// consumes the flight recorder's sweep stream, maintains per-series
// baselines, gates triggers through per-tenant SLO thresholds, invokes
// Algorithms 1/2 from stored history the moment a series misbehaves, and
// correlates the resulting evidence-bearing events into incidents with a
// timeline. The monitor itself decides when something is anomalous —
// the operator reads one incident, not a stream of disconnected events
// (ROADMAP item 4; DRST's non-intrusive framing, Dapper's continuous
// data-plane diagnosis).
package anomaly

import "math"

// RateDetector turns a counter-semantics series into a rate signal:
// each evaluation differences the sample against the previous one over
// their timestamp gap. It is the generalization of the original
// drop-spike Watcher — registered first in every pipeline so the
// existing -event-* controller flags keep their meaning.
//
// The zero value is ready to use (cold: the first sample only seeds).
type RateDetector struct {
	prevTS int64
	prevV  float64
	seeded bool
}

// RateStatus says what one rate evaluation concluded.
type RateStatus uint8

const (
	// RateOK: the returned rate is judgeable.
	RateOK RateStatus = iota
	// RateCold: the seeding (first) sample; no previous point to
	// difference against.
	RateCold
	// RateStale: the timestamp did not advance (duplicate or
	// out-of-order sweep); the sample is ignored and state kept.
	RateStale
	// RateGap: the gap to the previous sample exceeded maxGapNS
	// (missed sweeps; a rate averaged over a blackout is not a spike).
	// The detector re-seeds.
	RateGap
	// RateReset: the counter moved backwards (the agent restarted, so
	// Sub-style differencing would go negative). The detector re-seeds.
	RateReset
)

// Eval feeds one sample and returns the rate per second since the
// previous sample. Any status other than RateOK means the detector
// could not judge; RateGap and RateReset re-seed so the next sample
// evaluates normally.
func (d *RateDetector) Eval(ts int64, v float64, maxGapNS int64) (rate float64, st RateStatus) {
	prevTS, prevV, seeded := d.prevTS, d.prevV, d.seeded
	if ts <= prevTS && seeded {
		return 0, RateStale // keep state
	}
	d.prevTS, d.prevV, d.seeded = ts, v, true
	if !seeded {
		return 0, RateCold
	}
	gap := ts - prevTS
	if maxGapNS > 0 && gap > maxGapNS {
		return 0, RateGap // reseeded above
	}
	if v < prevV {
		return 0, RateReset // reseeded above
	}
	return (v - prevV) / (float64(gap) / 1e9), RateOK
}

// Seeded reports whether the detector holds a previous sample.
func (d *RateDetector) Seeded() bool { return d.seeded }

// LastTS returns the timestamp of the last accepted sample.
func (d *RateDetector) LastTS() int64 { return d.prevTS }

// EWMAConfig shapes one baseline detector.
type EWMAConfig struct {
	// Alpha is the EWMA smoothing factor for the mean and the mean
	// absolute deviation (0 < Alpha <= 1).
	Alpha float64
	// MinSamples is the cold-start length: no judgement until this many
	// samples have folded into the baseline.
	MinSamples int
	// Bands is the deviation multiplier: a sample is out of band when
	// |x − mean| > Bands · max(dev, RelFloor·|mean|, AbsFloor).
	Bands float64
	// RelFloor and AbsFloor keep a flat series (dev ≈ 0) from flagging
	// harmless jitter: the effective deviation never falls below
	// RelFloor·|mean| or AbsFloor.
	RelFloor float64
	AbsFloor float64
	// Persistence is how many consecutive out-of-band samples it takes
	// to trigger (a single blip is suppressed).
	Persistence int
}

// EWMAVerdict is one baseline evaluation.
type EWMAVerdict struct {
	// Out reports the sample landed outside the deviation bands.
	Out bool
	// Trigger reports the out-of-band streak reached Persistence.
	Trigger bool
	// Baseline and Band are the mean and the band half-width the sample
	// was judged against (evidence for the journal).
	Baseline float64
	Band     float64
	// Deviation is |x − mean| in band units (>1 means out).
	Deviation float64
}

// EWMADetector maintains an exponentially weighted baseline (mean and
// mean absolute deviation) for one series and judges each sample
// against deviation bands. The zero value is cold; the first sample
// seeds the mean.
type EWMADetector struct {
	mean   float64
	dev    float64
	warm   int
	streak int
}

// Eval folds one sample into the baseline and judges it. Out-of-band
// samples fold in at Alpha/8 so the baseline does not chase the anomaly
// it is reporting; the streak resets as soon as a sample lands back
// inside the bands — which is also how incidents detect recovery.
func (d *EWMADetector) Eval(x float64, cfg EWMAConfig) EWMAVerdict {
	if d.warm == 0 {
		d.mean, d.dev, d.warm = x, 0, 1
		return EWMAVerdict{Baseline: x}
	}
	v := EWMAVerdict{Baseline: d.mean}
	effDev := d.dev
	if f := cfg.RelFloor * math.Abs(d.mean); f > effDev {
		effDev = f
	}
	if cfg.AbsFloor > effDev {
		effDev = cfg.AbsFloor
	}
	v.Band = cfg.Bands * effDev
	diff := math.Abs(x - d.mean)
	if v.Band > 0 {
		v.Deviation = diff / v.Band
	}
	judging := d.warm >= cfg.MinSamples
	if judging && diff > v.Band {
		v.Out = true
		d.streak++
		if d.streak >= cfg.Persistence {
			v.Trigger = true
		}
		// Fold the outlier in slowly: the baseline must survive the
		// anomaly to notice the series coming back.
		a := cfg.Alpha / 8
		d.mean += a * (x - d.mean)
		d.dev += a * (diff - d.dev)
		return v
	}
	d.streak = 0
	d.mean += cfg.Alpha * (x - d.mean)
	d.dev += cfg.Alpha * (diff - d.dev)
	if d.warm < cfg.MinSamples {
		d.warm++
	}
	return v
}

// Reset returns the detector to cold start (used across series gaps).
func (d *EWMADetector) Reset() { *d = EWMADetector{} }

// Warm reports how many in-band samples have folded into the baseline
// (capped at the MinSamples it was evaluated with).
func (d *EWMADetector) Warm() int { return d.warm }

// Streak reports the current consecutive out-of-band count.
func (d *EWMADetector) Streak() int { return d.streak }

// Baseline returns the current mean.
func (d *EWMADetector) Baseline() float64 { return d.mean }
