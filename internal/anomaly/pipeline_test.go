package anomaly

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/history"
)

const testTenant = core.TenantID("t1")

// pipeLab is a pipeline wired to a real store and journal, fed synthetic
// sweeps directly (what the Monitor's AfterSweep hook would deliver).
type pipeLab struct {
	store   *history.Store
	journal *history.Journal
	p       *Pipeline
}

func newPipeLab(cfg Config) *pipeLab {
	store := history.New(history.Config{})
	journal := history.NewJournal(64)
	return &pipeLab{store: store, journal: journal, p: NewPipeline(store, journal, cfg)}
}

// sweep stores and evaluates one sweep's records for testTenant.
func (l *pipeLab) sweep(ts int64, recs map[core.ElementID]core.Record) {
	for eid, rec := range recs {
		rec.Timestamp = ts
		rec.Element = eid
		recs[eid] = rec
		l.store.Append(testTenant, rec)
	}
	l.p.AfterSweep(testTenant, recs, nil)
}

// dropRecs builds per-element records carrying a cumulative drop counter.
func dropRecs(drops map[core.ElementID]float64) map[core.ElementID]core.Record {
	recs := make(map[core.ElementID]core.Record, len(drops))
	for eid, d := range drops {
		recs[eid] = core.Record{Attrs: []core.Attr{
			{ID: core.AttrKind, Value: float64(core.KindVSwitch)},
			{ID: core.AttrDropPackets, Value: d},
		}}
	}
	return recs
}

func TestPipelineDropSpikeFiresOnceWithCooldown(t *testing.T) {
	l := newPipeLab(Config{SLO: SLOConfig{Default: SLO{
		DropRatePPS:      100,
		Window:           Duration(3 * time.Second),
		Cooldown:         Duration(5 * time.Second),
		DisableBaselines: true,
	}}})
	drops := func(now int64) map[core.ElementID]float64 {
		d := 0.0
		if now >= 5e9 {
			d = float64(now-4e9) / 1e6 // 1000 pps from t=5s on
		}
		return map[core.ElementID]float64{"m0/vswitch": d, "m1/vswitch": 0}
	}
	for ts := int64(1e9); ts <= 8e9; ts += 1e9 {
		l.sweep(ts, dropRecs(drops(ts)))
	}
	evs := l.journal.Since(0, 0)
	if len(evs) != 1 {
		t.Fatalf("pipeline emitted %d events, want 1 (cooldown suppresses the rest)", len(evs))
	}
	ev := evs[0]
	if ev.Element != "m0/vswitch" || ev.Tenant != testTenant {
		t.Fatalf("event blames %s/%s", ev.Tenant, ev.Element)
	}
	if ev.Detector != DetectorDropRate || ev.Attr != "drop_packets" {
		t.Fatalf("event detector/attr = %s/%s", ev.Detector, ev.Attr)
	}
	if ev.DropRate < 900 || ev.DropRate > 1100 {
		t.Fatalf("event drop rate = %v, want ~1000 pps", ev.DropRate)
	}
	if ev.Stack == nil {
		t.Fatalf("event carries no stack evidence (summary %q)", ev.Summary)
	}
	if len(ev.Stack.Ranked) == 0 || ev.Stack.Ranked[0].Element != "m0/vswitch" {
		t.Fatalf("stack evidence does not rank the dropping element first: %+v", ev.Stack.Ranked)
	}
	if ev.IncidentID == 0 {
		t.Fatal("event not linked to an incident")
	}

	in, ok := l.p.Incidents.Get(ev.IncidentID)
	if !ok || in.State != StateOpen {
		t.Fatalf("incident %d = %+v ok=%v", ev.IncidentID, in, ok)
	}
	if in.EventCount != 1 || len(in.EventSeqs) != 1 || in.EventSeqs[0] != ev.Seq {
		t.Fatalf("incident timeline = %+v, want event seq %d", in, ev.Seq)
	}
	// Detection latency: last healthy sample at t=4s, trigger at t=5s.
	if in.DetectionNS != 1e9 {
		t.Fatalf("DetectionNS = %d, want 1s", in.DetectionNS)
	}

	// Past the cooldown, the still-spiking element fires again — and the
	// recurrence folds into the SAME incident (same root cause, inside
	// the correlation window), not a second page.
	l.sweep(11e9, dropRecs(drops(11e9)))
	evs = l.journal.Since(0, 0)
	if len(evs) != 2 {
		t.Fatalf("post-cooldown sweep: %d events, want 2", len(evs))
	}
	if evs[1].IncidentID != ev.IncidentID {
		t.Fatalf("recurrence opened incident %d, want %d", evs[1].IncidentID, ev.IncidentID)
	}
	if l.p.Incidents.OpenCount() != 1 {
		t.Fatalf("OpenCount = %d, want 1", l.p.Incidents.OpenCount())
	}
}

// Detection latency must be computed on the RECORD clock — the gap from
// the violating record's timestamp back to the series' last healthy
// sample — never from evaluation wall time. The test drives Observe
// (the push-ingest hook) with record timestamps near epoch and inserts
// a real wall-clock delay before delivering the violating record: if
// any wall time leaked into the math, DetectionNS could not come out as
// the exact 1s record-clock gap.
func TestPipelineObserveLatencyFromRecordClock(t *testing.T) {
	l := newPipeLab(Config{SLO: SLOConfig{Default: SLO{
		DropRatePPS:      100,
		Window:           Duration(3 * time.Second),
		DisableBaselines: true,
	}}})
	rec := func(ts int64, drops float64) core.Record {
		r := core.Record{
			Timestamp: ts,
			Element:   "m0/vswitch",
			Attrs: []core.Attr{
				{ID: core.AttrKind, Value: float64(core.KindVSwitch)},
				{ID: core.AttrDropPackets, Value: drops},
			},
		}
		l.store.Append(testTenant, r)
		return r
	}
	// Healthy stream: four quiet arrivals, record clock 1s apart.
	for ts := int64(1e9); ts <= 4e9; ts += 1e9 {
		l.p.Observe(testTenant, []core.Record{rec(ts, 0)})
	}
	// The violating record carries ts=5s but is DELIVERED late — the
	// wall clock advances well past the 1s record-clock gap first.
	violating := rec(5e9, 1000) // 1000 pps over the 1s record interval
	time.Sleep(60 * time.Millisecond)
	l.p.Observe(testTenant, []core.Record{violating})

	evs := l.journal.Since(0, 0)
	if len(evs) != 1 {
		t.Fatalf("Observe emitted %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.TS != 5e9 {
		t.Fatalf("event TS = %d, want the violating record's 5e9", ev.TS)
	}
	in, ok := l.p.Incidents.Get(ev.IncidentID)
	if !ok {
		t.Fatalf("incident %d missing", ev.IncidentID)
	}
	// Exactly the record-clock gap (5s-4s); wall time at evaluation was
	// ~56 years after these timestamps plus a 60ms delivery delay, so
	// any wall-clock contamination breaks the equality.
	if in.DetectionNS != 1e9 {
		t.Fatalf("DetectionNS = %d, want exactly 1e9 (record clock)", in.DetectionNS)
	}
}

// Observe and AfterSweep share per-series detector state: a machine
// that falls back from push to sweep keeps its baselines and rate
// windows instead of re-learning from scratch.
func TestPipelineObserveSharesStateWithSweep(t *testing.T) {
	l := newPipeLab(Config{SLO: SLOConfig{Default: SLO{
		DropRatePPS:      100,
		DisableBaselines: true,
	}}})
	mk := func(ts int64, drops float64) core.Record {
		return core.Record{
			Timestamp: ts,
			Element:   "m0/vswitch",
			Attrs: []core.Attr{
				{ID: core.AttrKind, Value: float64(core.KindVSwitch)},
				{ID: core.AttrDropPackets, Value: drops},
			},
		}
	}
	// Seed the rate window via the push path...
	l.p.Observe(testTenant, []core.Record{mk(1e9, 0)})
	// ...then deliver the spike via the sweep path. If state were not
	// shared, the sweep's first sample would only seed its own window
	// and nothing could fire.
	l.p.AfterSweep(testTenant, map[core.ElementID]core.Record{
		"m0/vswitch": mk(2e9, 1000),
	}, nil)
	if evs := l.journal.Since(0, 0); len(evs) != 1 {
		t.Fatalf("sweep after push seed emitted %d events, want 1 (state not shared?)", len(evs))
	}
}

func TestPipelineBaselineDetectsGaugeShift(t *testing.T) {
	l := newPipeLab(Config{})
	gauge := func(v float64) map[core.ElementID]core.Record {
		return map[core.ElementID]core.Record{"m0/vswitch": {Attrs: []core.Attr{
			{ID: core.AttrQueueLen, Value: v},
		}}}
	}
	ts := int64(0)
	next := func(v float64) {
		ts += 1e9
		l.sweep(ts, gauge(v))
	}
	for i := 0; i < 10; i++ {
		next(3) // learn a flat baseline
	}
	// Default persistence is 3: two outliers are a blip...
	next(500)
	next(500)
	if evs := l.journal.Since(0, 0); len(evs) != 0 {
		t.Fatalf("blip below persistence emitted %d events", len(evs))
	}
	// ...the third triggers.
	next(500)
	evs := l.journal.Since(0, 0)
	if len(evs) != 1 {
		t.Fatalf("persistent shift emitted %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Detector != DetectorBaseline || ev.Attr != "queue_len" {
		t.Fatalf("event detector/attr = %s/%s", ev.Detector, ev.Attr)
	}
	if ev.Value != 500 || ev.Baseline > 100 {
		t.Fatalf("event value/baseline = %v/%v", ev.Value, ev.Baseline)
	}
	if ev.Summary == "" {
		t.Fatal("event has no summary")
	}
	// No drop evidence exists, so the incident keys on the element.
	in, ok := l.p.Incidents.Get(ev.IncidentID)
	if !ok || in.RootCause != "m0/vswitch" {
		t.Fatalf("incident = %+v ok=%v", in, ok)
	}
	// Detection latency spans the out-of-band streak back to the last
	// in-band sample (t=10s -> trigger t=13s).
	if in.DetectionNS != 3e9 {
		t.Fatalf("DetectionNS = %d, want 3s", in.DetectionNS)
	}
}

func TestPipelineIncidentResolvesWhenSeriesRecover(t *testing.T) {
	l := newPipeLab(Config{
		SLO: SLOConfig{Default: SLO{
			DropRatePPS: 100, Cooldown: Duration(2 * time.Second), DisableBaselines: true,
		}},
		Correlator: CorrelatorConfig{Window: 30 * time.Second, ResolveAfter: 4 * time.Second},
	})
	total := 0.0
	ts := int64(0)
	next := func(pps float64) {
		ts += 1e9
		total += pps
		l.sweep(ts, dropRecs(map[core.ElementID]float64{"m0/vswitch": total}))
	}
	next(0)
	next(0)
	next(1000) // trigger
	if l.p.Incidents.OpenCount() != 1 {
		t.Fatalf("OpenCount after spike = %d", l.p.Incidents.OpenCount())
	}
	// The series goes quiet; sweeps keep ticking the correlator clock.
	for i := 0; i < 5; i++ {
		next(0)
	}
	if l.p.Incidents.OpenCount() != 0 {
		t.Fatalf("incident still open %v after recovery", time.Duration(ts-3e9))
	}
	res := l.p.Incidents.List(StateResolved, 0)
	if len(res) != 1 || res[0].ResolvedAt == 0 {
		t.Fatalf("resolved list = %+v", res)
	}
}

func TestPipelinePerTenantSLO(t *testing.T) {
	l := newPipeLab(Config{SLO: SLOConfig{
		Default: SLO{DropRatePPS: 1000, DisableBaselines: true},
		Tenants: map[core.TenantID]SLO{"gold": {DropRatePPS: 10}},
	}})
	sweepFor := func(tid core.TenantID, ts int64, drops float64) {
		recs := dropRecs(map[core.ElementID]float64{core.ElementID(string(tid) + "/vswitch"): drops})
		for eid, rec := range recs {
			rec.Timestamp = ts
			rec.Element = eid
			recs[eid] = rec
			l.store.Append(tid, rec)
		}
		l.p.AfterSweep(tid, recs, nil)
	}
	for _, tid := range []core.TenantID{"best-effort", "gold"} {
		sweepFor(tid, 1e9, 0)
		sweepFor(tid, 2e9, 60) // 60 pps: over gold's SLO, under the default
	}
	evs := l.journal.Since(0, 0)
	if len(evs) != 1 || evs[0].Tenant != "gold" {
		t.Fatalf("events = %+v, want exactly one for tenant gold", evs)
	}
}

func TestPipelineCounterResetAndGapStayQuiet(t *testing.T) {
	l := newPipeLab(Config{
		SLO:    SLOConfig{Default: SLO{DropRatePPS: 500, DisableBaselines: true}},
		MaxGap: 10 * time.Second,
	})
	steps := []struct {
		ts    int64
		drops float64
	}{
		{1e9, 1000},
		{2e9, 1100},  // 100 pps, under threshold
		{3e9, 50},    // agent restart: counter reset, not a -1050 pps event
		{4e9, 150},   // 100 pps from the new seed
		{60e9, 9000}, // 56s sweep blackout: not a (9000-150)/56s judgement
		{61e9, 9100}, // 100 pps again
	}
	for _, s := range steps {
		l.sweep(s.ts, dropRecs(map[core.ElementID]float64{"m0/vswitch": s.drops}))
	}
	if evs := l.journal.Since(0, 0); len(evs) != 0 {
		t.Fatalf("reset/gap emitted %d events: %+v", len(evs), evs)
	}
}

// TestPipelineConcurrentEvalAndAppend races detector evaluation against
// live store appends and a journal subscriber; run under -race (see
// make test) it proves the pipeline takes no unlocked shortcuts.
func TestPipelineConcurrentEvalAndAppend(t *testing.T) {
	l := newPipeLab(Config{SLO: SLOConfig{Default: SLO{
		DropRatePPS: 100, Cooldown: Duration(time.Second), DisableBaselines: true,
	}}})
	sub := l.journal.Subscribe(16)
	var drained sync.WaitGroup
	drained.Add(1)
	go func() {
		defer drained.Done()
		for range sub.C() {
		}
	}()

	const sweeps = 300
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the monitor: sweep, evaluate, occasionally trigger
		defer wg.Done()
		total := 0.0
		for i := int64(1); i <= sweeps; i++ {
			if i%10 == 0 {
				total += 5000 // a spike every 10th sweep
			}
			l.sweep(i*1e9, dropRecs(map[core.ElementID]float64{"m0/vswitch": total, "m1/vswitch": 0}))
		}
	}()
	go func() { // an unrelated writer appending to the same store
		defer wg.Done()
		for i := int64(1); i <= sweeps; i++ {
			l.store.Append("other-tenant", core.Record{
				Timestamp: i * 1e9,
				Element:   core.ElementID(fmt.Sprintf("m%d/nic", i%4)),
				Attrs:     []core.Attr{{ID: core.AttrRxPackets, Value: float64(i)}},
			})
		}
	}()
	wg.Wait()
	sub.Close()
	drained.Wait()
	if evs := l.journal.Since(0, 0); len(evs) == 0 {
		t.Fatal("concurrent run triggered nothing")
	}
}
