package anomaly

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/history"
)

// incidentServer fires one drop-spike incident through a real pipeline
// and serves it.
func incidentServer(t *testing.T) (*httptest.Server, *pipeLab) {
	t.Helper()
	l := newPipeLab(Config{SLO: SLOConfig{Default: SLO{
		DropRatePPS: 100, Cooldown: Duration(time.Minute), DisableBaselines: true,
	}}})
	total := 0.0
	for i := int64(1); i <= 4; i++ {
		if i >= 3 {
			total += 1000
		}
		l.sweep(i*1e9, dropRecs(map[core.ElementID]float64{"m0/vswitch": total}))
	}
	if l.p.Incidents.OpenCount() != 1 {
		t.Fatalf("setup fired %d incidents, want 1", l.p.Incidents.OpenCount())
	}
	mux := http.NewServeMux()
	(&Server{Pipeline: l.p, Journal: l.journal}).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, l
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestIncidentsEndpoint(t *testing.T) {
	ts, _ := incidentServer(t)

	var list struct {
		Incidents []Incident `json:"incidents"`
		Open      int        `json:"open"`
	}
	if code := get(t, ts.URL+"/incidents", &list); code != 200 {
		t.Fatalf("/incidents status %d", code)
	}
	if len(list.Incidents) != 1 || list.Open != 1 {
		t.Fatalf("list = %+v", list)
	}
	in := list.Incidents[0]
	if in.State != StateOpen || in.EventCount != 1 {
		t.Fatalf("incident = %+v", in)
	}

	list.Incidents = nil
	get(t, ts.URL+"/incidents?state=resolved", &list)
	if len(list.Incidents) != 0 {
		t.Fatalf("resolved list = %+v", list.Incidents)
	}
	if code := get(t, ts.URL+"/incidents?state=banana", nil); code != 400 {
		t.Fatalf("bad state: status %d, want 400", code)
	}
}

func TestIncidentDetailEndpoint(t *testing.T) {
	ts, l := incidentServer(t)
	id := l.p.Incidents.List(StateOpen, 0)[0].ID

	var detail struct {
		Incident Incident        `json:"incident"`
		Events   []history.Event `json:"events"`
	}
	if code := get(t, ts.URL+"/incidents/1", &detail); code != 200 {
		t.Fatalf("/incidents/1 status %d", code)
	}
	if detail.Incident.ID != id {
		t.Fatalf("detail incident = %+v", detail.Incident)
	}
	if len(detail.Events) != 1 || detail.Events[0].IncidentID != id {
		t.Fatalf("detail events = %+v", detail.Events)
	}
	if detail.Events[0].Detector != DetectorDropRate {
		t.Fatalf("event detector = %q", detail.Events[0].Detector)
	}

	if code := get(t, ts.URL+"/incidents/99", nil); code != 404 {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
	if code := get(t, ts.URL+"/incidents/banana", nil); code != 400 {
		t.Fatalf("bad id: status %d, want 400", code)
	}
}
