package controller

// Mixed-version interop for sketch flow statistics: the hello Sketch bit
// decides per connection whether the vswitch record carries the
// constant-size flow_sketch summary or the legacy per-rule enumeration,
// so a new agent keeps serving old controllers and vice versa.

import (
	"net"
	"strings"
	"testing"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/wire"
)

// sketchAgentSetup serves a sketch-mode agent (a real machine with
// traffic on flow f1) over TCP and returns a registered controller.
func sketchAgentSetup(t *testing.T, mutate func(c *TCPClient)) (*Controller, *TCPClient) {
	t.Helper()
	m := machine.New(machine.DefaultConfig("m0"))
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	m.AddVM("vm0", 1.0, 1e9, sink)
	m.Stack.VSwitch.InstallToVM("f1", "vm0")
	a, err := agent.Build(m, agent.BuildOptions{
		QEMULogDir: t.TempDir(),
		FlowStats:  agent.FlowStatsSketch,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Traffic flows after Build so the sketch (enabled there) sees it.
	m.OfferWire([]dataplane.Batch{{Flow: "f1", Packets: 100, Bytes: 100 * 1448}}, time.Millisecond)
	for i := 0; i < 50; i++ {
		m.Tick(time.Duration(i+1)*time.Millisecond, time.Millisecond)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go a.Serve(ln)

	c := NewTCPClient(ln.Addr().String())
	c.Timeout = 2 * time.Second
	if mutate != nil {
		mutate(c)
	}
	t.Cleanup(func() { c.Close() })

	topo := core.NewTopology()
	topo.Net("t1").Add("m0/vswitch", core.ElementInfo{Machine: "m0", Kind: core.KindVSwitch})
	ctl := New(topo)
	ctl.RegisterAgent("m0", c)
	return ctl, c
}

func sampleVSwitch(t *testing.T, ctl *Controller) core.Record {
	t.Helper()
	recs, err := ctl.Sample("t1", []core.ElementID{"m0/vswitch"})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := recs["m0/vswitch"]
	if !ok {
		t.Fatalf("no vswitch record: %+v", recs)
	}
	return rec
}

func hasRuleAttrs(rec core.Record) bool {
	for _, a := range rec.Attrs {
		if strings.HasPrefix(core.AttrName(a.ID), "rule_") {
			return true
		}
	}
	return false
}

// A sketch-requesting controller against a sketch-mode agent gets the
// flow_sketch summary — a decodable blob whose top-k carries the flow
// exactly — and no per-flow rule_* extension attrs at all.
func TestInteropSketchNegotiated(t *testing.T) {
	ctl, c := sketchAgentSetup(t, func(c *TCPClient) { c.Sketch = true })
	rec := sampleVSwitch(t, ctl)
	if got := c.NegotiatedCodec(); got != wire.CodecV2 {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecV2)
	}
	a, ok := rec.GetAttr(core.SketchAttrID())
	if !ok || len(a.Payload) == 0 {
		t.Fatalf("no flow_sketch payload in sketch-negotiated record: %+v", rec.Attrs)
	}
	sum, err := dataplane.DecodeSketch(a.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != float64(sum.Epoch) {
		t.Fatalf("attr value %v is not the blob epoch %d", a.Value, sum.Epoch)
	}
	var f1 *dataplane.TopFlow
	for i := range sum.Top {
		if sum.Top[i].Flow == "f1" {
			f1 = &sum.Top[i]
		}
	}
	if f1 == nil || !f1.Exact() || f1.Pkts == 0 {
		t.Fatalf("flow f1 not exactly tracked: %+v", sum.Top)
	}
	if hasRuleAttrs(rec) {
		t.Fatalf("sketch-negotiated record still enumerates rule_* attrs: %+v", rec.Attrs)
	}
}

// The same agent serving a controller that never requested the sketch
// capability (an old build) falls back to the legacy per-rule
// enumeration, byte-compatible with pre-sketch agents.
func TestInteropSketchAgentLegacyV2Controller(t *testing.T) {
	ctl, _ := sketchAgentSetup(t, nil) // v2, Sketch not requested
	rec := sampleVSwitch(t, ctl)
	if v := rec.GetOr(core.AttrIDFor("rule_f1_packets"), 0); v == 0 {
		t.Fatalf("legacy controller lost per-rule counters: %+v", rec.Attrs)
	}
	if a, ok := rec.GetAttr(core.SketchAttrID()); ok && len(a.Payload) > 0 {
		t.Fatalf("sketch payload pushed to a controller that never asked: %+v", a)
	}
}

// A JSON-pinned controller sends no hello at all; it too must keep
// getting the legacy enumeration from a sketch-mode agent.
func TestInteropSketchAgentJSONController(t *testing.T) {
	ctl, c := sketchAgentSetup(t, func(c *TCPClient) { c.Codec = wire.CodecJSON })
	rec := sampleVSwitch(t, ctl)
	if got := c.NegotiatedCodec(); got != wire.CodecJSON {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecJSON)
	}
	if v := rec.GetOr(core.AttrIDFor("rule_f1_packets"), 0); v == 0 {
		t.Fatalf("JSON controller lost per-rule counters: %+v", rec.Attrs)
	}
}
