package controller

// Mixed-version interop: a codec-v2 controller must work against a
// JSON-only agent (and vice versa), negotiating down transparently, and
// the sweep layer's retry path must survive a connection whose codec
// state desynchronizes mid-stream.

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// tcpSetup is testSetup over a real TCP agent: counters grow linearly
// with a virtual clock shared by agent and controller.
func tcpSetup(t *testing.T, mutate func(a *agent.Agent, c *TCPClient)) (*Controller, *TCPClient) {
	t.Helper()
	var now int64
	a := agent.New("m0", func() int64 { return now })
	a.Register(&agent.DirectAdapter{E: &fakeElem{id: "m0/pnic", kind: core.KindPNIC,
		attrs: func(ts int64) []core.Attr {
			s := float64(ts) / 1e9
			return []core.Attr{
				{ID: core.AttrRxBytes, Value: 1000 * s},
				{ID: core.AttrRxPackets, Value: 10 * s},
				{ID: core.AttrDropPackets, Value: 2 * s},
			}
		}}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })

	c := NewTCPClient(ln.Addr().String())
	c.Timeout = 2 * time.Second
	if mutate != nil {
		mutate(a, c)
	}
	go a.Serve(ln)
	t.Cleanup(func() { c.Close() })

	topo := core.NewTopology()
	topo.Net("t1").Add("m0/pnic", core.ElementInfo{Machine: "m0", Kind: core.KindPNIC})
	ctl := New(topo)
	ctl.Wait = func(d time.Duration) { now += int64(d) }
	ctl.RegisterAgent("m0", c)
	return ctl, c
}

func sampleOnce(t *testing.T, ctl *Controller) core.Record {
	t.Helper()
	recs, err := ctl.Sample("t1", []core.ElementID{"m0/pnic"})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := recs["m0/pnic"]
	if !ok || len(rec.Attrs) != 3 {
		t.Fatalf("sample: %+v", recs)
	}
	return rec
}

// A v2 controller against a JSON-only agent negotiates down to JSON and
// completes a full Sample sweep.
func TestInteropV2ControllerJSONAgent(t *testing.T) {
	ctl, c := tcpSetup(t, func(a *agent.Agent, _ *TCPClient) {
		a.Codec = wire.CodecJSON
	})
	sampleOnce(t, ctl)
	if got := c.NegotiatedCodec(); got != wire.CodecJSON {
		t.Fatalf("negotiated %q; want fallback to %q", got, wire.CodecJSON)
	}
}

// A JSON-pinned controller against a v2-capable agent never sends a
// hello; the agent stays on JSON for that connection.
func TestInteropJSONControllerV2Agent(t *testing.T) {
	ctl, c := tcpSetup(t, func(_ *agent.Agent, c *TCPClient) {
		c.Codec = wire.CodecJSON
	})
	sampleOnce(t, ctl)
	if got := c.NegotiatedCodec(); got != wire.CodecJSON {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecJSON)
	}
}

// Both ends v2: the sweep runs on the binary codec.
func TestInteropV2BothEnds(t *testing.T) {
	ctl, c := tcpSetup(t, nil)
	sampleOnce(t, ctl)
	if got := c.NegotiatedCodec(); got != wire.CodecV2 {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecV2)
	}
}

// Delta mode: consecutive sweeps on one connection must decode to the
// same values a full encoding would, even though only changed attrs are
// on the wire after the first response.
func TestInteropV2DeltaSweeps(t *testing.T) {
	ctl, c := tcpSetup(t, func(a *agent.Agent, c *TCPClient) {
		a.AllowDelta = true
		c.Delta = true
	})
	prev := sampleOnce(t, ctl)
	for i := 1; i <= 3; i++ {
		ctl.Wait(time.Second) // advance the shared virtual clock
		rec := sampleOnce(t, ctl)
		want := 1000 * float64(i)
		got, ok := rec.Get(core.AttrRxBytes)
		if !ok || got != want {
			t.Fatalf("sweep %d: rx_bytes = %v (ok=%v); want %v", i, got, ok, want)
		}
		// The previous sweep's record must keep its own values: decoded
		// records may not alias codec-internal delta state.
		if pv, _ := prev.Get(core.AttrRxBytes); pv != 1000*float64(i-1) {
			t.Fatalf("sweep %d corrupted previous record: rx_bytes = %v", i, pv)
		}
		prev = rec
	}
	if got := c.NegotiatedCodec(); got != wire.CodecV2 {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecV2)
	}
}

// Killing the connection mid-delta-chain and redialing must yield
// byte-exact records: the redial renegotiates a fresh codec pair on both
// ends (conn and codec are bound structurally in agentLink), so the
// first response after reconnect re-sends full records rather than
// applying deltas against the dead connection's baseline.
func TestInteropRedialMidDeltaChainExactValues(t *testing.T) {
	ctl, c := tcpSetup(t, func(a *agent.Agent, c *TCPClient) {
		a.AllowDelta = true
		c.Delta = true
	})
	// Establish a delta chain: first sweep full, second sweep delta.
	sampleOnce(t, ctl)
	ctl.Wait(time.Second)
	sampleOnce(t, ctl)

	// Kill the established connection out from under the client — the
	// next sweep's write (or read) fails and earns the one transparent
	// redial, which must renegotiate codec state from scratch.
	c.mu.Lock()
	if c.link == nil {
		c.mu.Unlock()
		t.Fatal("no cached link after two sweeps")
	}
	c.link.conn.Close()
	c.mu.Unlock()

	for i := 2; i <= 4; i++ {
		ctl.Wait(time.Second)
		rec := sampleOnce(t, ctl)
		// The virtual clock says exactly what every counter must read;
		// any stale delta baseline shears values off these lattices.
		s := float64(i)
		for _, want := range []struct {
			id core.AttrID
			v  float64
		}{
			{core.AttrRxBytes, 1000 * s},
			{core.AttrRxPackets, 10 * s},
			{core.AttrDropPackets, 2 * s},
		} {
			if got, ok := rec.Get(want.id); !ok || got != want.v {
				t.Fatalf("sweep %d after redial: %s = %v,%v; want exactly %v",
					i, core.AttrName(want.id), got, ok, want.v)
			}
		}
	}
	if got := c.NegotiatedCodec(); got != wire.CodecV2 {
		t.Fatalf("renegotiated %q; want %q", got, wire.CodecV2)
	}
}

// An old JSON-only agent may report attribute names the controller's
// schema has never heard of (a newer middlebox build, per-flow counters).
// The names must survive decode — resolved to extension AttrIDs with
// values intact and no attribute dropped — and re-emerge verbatim on the
// JSON surface. The response frame is raw JSON written byte-by-byte, so
// the names are genuinely first seen by the decode path, not registered
// as a side effect of building the fixture.
func TestInteropOldAgentUnknownAttrs(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			msg, err := wire.Read(conn)
			if err != nil {
				return
			}
			switch msg.Type {
			case wire.TypeHello:
				// Old agent: hello is an unknown message type.
				wire.Write(conn, &wire.Message{Type: wire.TypeError, ID: msg.ID,
					Error: "unknown message type"})
			case wire.TypeQuery:
				raw := fmt.Sprintf(`{"type":"response","id":%d,"machine":"m0",`+
					`"records":[{"ts":5,"element":"m0/vm1/app","attrs":[`+
					`{"name":"rx_packets","value":10},`+
					`{"name":"fw_active_sessions","value":37},`+
					`{"name":"old_agent_only_sessions_peak","value":41.5}]}]}`, msg.ID)
				wire.WriteFrame(conn, []byte(raw))
			default:
				wire.Write(conn, &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: "unexpected"})
			}
		}
	}()

	if _, known := core.LookupAttr("fw_active_sessions"); known {
		t.Fatal("fixture name already registered; test would be vacuous")
	}

	c := NewTCPClient(ln.Addr().String())
	c.Timeout = 2 * time.Second
	defer c.Close()
	topo := core.NewTopology()
	topo.Net("t1").Add("m0/vm1/app", core.ElementInfo{Machine: "m0", Kind: core.KindMiddlebox})
	ctl := New(topo)
	ctl.RegisterAgent("m0", c)

	recs, err := ctl.Sample("t1", []core.ElementID{"m0/vm1/app"})
	if err != nil {
		t.Fatal(err)
	}
	rec := recs["m0/vm1/app"]
	if len(rec.Attrs) != 3 {
		t.Fatalf("attrs lost in decode: %+v", rec)
	}
	// The unknown names resolved to extension IDs, values intact.
	for _, want := range []struct {
		name  string
		value float64
	}{{"rx_packets", 10}, {"fw_active_sessions", 37}, {"old_agent_only_sessions_peak", 41.5}} {
		id, ok := core.LookupAttr(want.name)
		if !ok {
			t.Fatalf("%q not registered by decode", want.name)
		}
		if want.name != "rx_packets" && core.IsSchemaAttr(id) {
			t.Fatalf("%q resolved to schema ID %d", want.name, id)
		}
		if v, ok := rec.Get(id); !ok || v != want.value {
			t.Fatalf("%s = %v,%v; want %v", want.name, v, ok, want.value)
		}
	}
	// Round-tripping through JSON emits the original names, not IDs.
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fw_active_sessions", "old_agent_only_sessions_peak"} {
		if !strings.Contains(string(b), `"name":"`+name+`"`) {
			t.Fatalf("JSON surface lost %q: %s", name, b)
		}
	}
}

// A peer that grants v2 and then emits frames the codec cannot parse
// desynchronizes the connection. The client drops it, and the sweep
// layer's retry redials; a second connection where the peer behaves as
// an old JSON-only agent must complete the sweep.
func TestSweepSurvivesMidConnectionCodecMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	conns := make(chan net.Conn, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns <- conn
		}
	}()
	go func() {
		// First connection: ack v2, then break the stream.
		conn := <-conns
		msg, err := wire.Read(conn)
		if err == nil && msg.Type == wire.TypeHello {
			wire.Write(conn, &wire.Message{Type: wire.TypeHelloAck, ID: msg.ID,
				Hello: &wire.Hello{Codecs: []string{wire.CodecV2}}})
			if _, err := wire.ReadFrame(conn); err == nil { // the v2 query
				wire.WriteFrame(conn, []byte(`{"not":"v2"}`)) // undecodable under v2
			}
		}
		conn.Close()
		// Second connection: behave as an agent that predates v2 — a hello
		// is an unknown message type, answered with a JSON error frame.
		conn = <-conns
		for {
			msg, err := wire.Read(conn)
			if err != nil {
				conn.Close()
				return
			}
			switch msg.Type {
			case wire.TypeHello:
				wire.Write(conn, &wire.Message{Type: wire.TypeError, ID: msg.ID,
					Error: "unknown message type"})
			case wire.TypeQuery:
				wire.Write(conn, &wire.Message{Type: wire.TypeResponse, ID: msg.ID, Machine: "m0",
					Records: []core.Record{{Timestamp: 1, Element: "m0/pnic",
						Attrs: []core.Attr{{ID: core.AttrRxBytes, Value: 42}}}}})
			default:
				wire.Write(conn, &wire.Message{Type: wire.TypeError, ID: msg.ID, Error: "unexpected"})
			}
		}
	}()

	c := NewTCPClient(ln.Addr().String())
	c.Timeout = 2 * time.Second
	defer c.Close()
	topo := core.NewTopology()
	topo.Net("t1").Add("m0/pnic", core.ElementInfo{Machine: "m0", Kind: core.KindPNIC})
	ctl := New(topo)
	ctl.Sweep = SweepConfig{Retries: 1, BackoffBase: time.Millisecond}
	ctl.RegisterAgent("m0", c)

	recs, err := ctl.Sample("t1", []core.ElementID{"m0/pnic"})
	if err != nil {
		t.Fatalf("sweep did not survive codec mismatch: %v", err)
	}
	if v, _ := recs["m0/pnic"].Get(core.AttrRxBytes); v != 42 {
		t.Fatalf("rx_bytes = %v; want 42", v)
	}
	if got := c.NegotiatedCodec(); got != wire.CodecJSON {
		t.Fatalf("negotiated %q after fallback; want %q", got, wire.CodecJSON)
	}
}
