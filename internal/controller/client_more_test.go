package controller

import (
	"net"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

func TestLocalClientSurface(t *testing.T) {
	_, a := testSetup(t)
	c := &LocalClient{A: a}
	metas, err := c.ListElements()
	if err != nil || len(metas) != 1 || metas[0].ID != "m0/pnic" {
		t.Fatalf("list: %v, %v", metas, err)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPingAgents(t *testing.T) {
	ctl, a := testSetup(t)
	ctl.RegisterAgent("m1", &LocalClient{A: a})
	rtts := ctl.PingAgents()
	if len(rtts) != 2 {
		t.Fatalf("pinged %d agents; want 2", len(rtts))
	}
	for m, d := range rtts {
		if d < 0 {
			t.Fatalf("agent %s rtt %v", m, d)
		}
	}
}

// TestDialFailureIsNotAReconnect: a failed fresh dial must not count as a
// reconnect nor trigger an immediate un-backed-off redial — retry policy
// lives in the sweep layer.
func TestDialFailureIsNotAReconnect(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewTCPClient("127.0.0.1:1").EnableTelemetry(reg, nil) // nothing listening
	c.Timeout = 200 * time.Millisecond
	if _, err := c.Ping(); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if v := reg.Counter("perfsight_controller_reconnects_total", "").Value(); v != 0 {
		t.Fatalf("dial failure counted as %d reconnect(s)", v)
	}
	if v := reg.Counter("perfsight_controller_wire_errors_total", "").Value(); v != 1 {
		t.Fatalf("wire errors = %d; want 1", v)
	}
}

// TestStaleConnectionCountsOneReconnect: a server that drops the
// connection after each reply forces the established-conn-went-stale
// path, which redials exactly once and counts it.
func TestStaleConnectionCountsOneReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				msg, err := wire.Read(conn)
				if err != nil {
					return
				}
				wire.Write(conn, &wire.Message{Type: wire.TypePong, ID: msg.ID})
			}(conn) // one reply, then hang up
		}
	}()
	reg := telemetry.NewRegistry()
	c := NewTCPClient(ln.Addr().String()).EnableTelemetry(reg, nil)
	// Pin the raw JSON path: the fake server answers exactly one frame per
	// connection, so a codec hello would eat it. Negotiation has its own
	// coverage in interop_test.go.
	c.Codec = wire.CodecJSON
	defer c.Close()
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// The cached connection is now dead server-side; the next request
	// must transparently redial once.
	if _, err := c.Ping(); err != nil {
		t.Fatalf("stale-connection reconnect failed: %v", err)
	}
	if v := reg.Counter("perfsight_controller_reconnects_total", "").Value(); v != 1 {
		t.Fatalf("reconnects = %d; want 1", v)
	}
}

func TestControllerNilTopology(t *testing.T) {
	ctl := New(nil)
	if ctl.Topology() == nil {
		t.Fatal("nil topology not defaulted")
	}
	if ctl.Topology().Tenants == nil {
		t.Fatal("default topology unusable")
	}
}

func TestIntervalTxBps(t *testing.T) {
	iv := Interval{
		Prev: core.Record{Timestamp: 0, Attrs: []core.Attr{{ID: core.AttrTxBytes, Value: 0}}},
		Cur:  core.Record{Timestamp: 2e9, Attrs: []core.Attr{{ID: core.AttrTxBytes, Value: 1000}}},
	}
	if got := iv.TxBps(); got != 4000 {
		t.Fatalf("TxBps = %v; want 4000", got)
	}
	zero := Interval{}
	if zero.TxBps() != 0 || zero.RxBps() != 0 {
		t.Fatal("zero interval rates")
	}
}

func TestGetThroughputZeroWindowFails(t *testing.T) {
	ctl, _ := testSetup(t)
	ctl.Wait = func(time.Duration) {} // clock frozen
	if _, err := ctl.GetThroughput("t1", "m0/pnic", core.AttrRxBytes, time.Second); err == nil {
		t.Fatal("zero-length interval accepted")
	}
}
