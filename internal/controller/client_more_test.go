package controller

import (
	"testing"
	"time"

	"perfsight/internal/core"
)

func TestLocalClientSurface(t *testing.T) {
	_, a := testSetup(t)
	c := &LocalClient{A: a}
	metas, err := c.ListElements()
	if err != nil || len(metas) != 1 || metas[0].ID != "m0/pnic" {
		t.Fatalf("list: %v, %v", metas, err)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPingAgents(t *testing.T) {
	ctl, a := testSetup(t)
	ctl.RegisterAgent("m1", &LocalClient{A: a})
	rtts := ctl.PingAgents()
	if len(rtts) != 2 {
		t.Fatalf("pinged %d agents; want 2", len(rtts))
	}
	for m, d := range rtts {
		if d < 0 {
			t.Fatalf("agent %s rtt %v", m, d)
		}
	}
}

func TestControllerNilTopology(t *testing.T) {
	ctl := New(nil)
	if ctl.Topology() == nil {
		t.Fatal("nil topology not defaulted")
	}
	if ctl.Topology().Tenants == nil {
		t.Fatal("default topology unusable")
	}
}

func TestIntervalTxBps(t *testing.T) {
	iv := Interval{
		Prev: core.Record{Timestamp: 0, Attrs: []core.Attr{{Name: core.AttrTxBytes, Value: 0}}},
		Cur:  core.Record{Timestamp: 2e9, Attrs: []core.Attr{{Name: core.AttrTxBytes, Value: 1000}}},
	}
	if got := iv.TxBps(); got != 4000 {
		t.Fatalf("TxBps = %v; want 4000", got)
	}
	zero := Interval{}
	if zero.TxBps() != 0 || zero.RxBps() != 0 {
		t.Fatal("zero interval rates")
	}
}

func TestGetThroughputZeroWindowFails(t *testing.T) {
	ctl, _ := testSetup(t)
	ctl.Wait = func(time.Duration) {} // clock frozen
	if _, err := ctl.GetThroughput("t1", "m0/pnic", core.AttrRxBytes, time.Second); err == nil {
		t.Fatal("zero-length interval accepted")
	}
}
