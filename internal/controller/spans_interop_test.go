package controller

// Mixed-version interop for the trace spine: the hello Spans bit decides
// per connection whether v2 response frames carry the agent's
// per-channel span decomposition. A span-blind peer on either side of
// the connection must degrade to plain responses — same records, no
// spans, no errors.

import (
	"net"
	"strings"
	"testing"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// spansAgentSetup serves a real machine-backed agent over TCP and
// returns an instrumented client whose tracer retains every trace's
// span forest.
func spansAgentSetup(t *testing.T, allowSpans bool, mutate func(*TCPClient)) (*TCPClient, *telemetry.SpanStore) {
	t.Helper()
	m := machine.New(machine.DefaultConfig("m0"))
	sink := middlebox.NewSink("m0/vm0/app", 1e9)
	m.AddVM("vm0", 1.0, 1e9, sink)
	a, err := agent.Build(m, agent.BuildOptions{QEMULogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	a.AllowSpans = allowSpans
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go a.Serve(ln)

	c := NewTCPClient(ln.Addr().String())
	c.Timeout = 2 * time.Second
	c.Spans = true
	if mutate != nil {
		mutate(c)
	}
	t.Cleanup(func() { c.Close() })

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(reg, "controller", 64)
	st := telemetry.NewSpanStore(reg, 64, 16, 8)
	tracer.AttachSpanStore(st, 1, 0)
	c.EnableTelemetry(reg, tracer)
	return c, st
}

// queryTrace runs one query through the client and returns the retained
// trace it produced.
func queryTrace(t *testing.T, c *TCPClient, st *telemetry.SpanStore) telemetry.StoredTrace {
	t.Helper()
	recs, err := c.Query(wire.Query{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("query returned no records")
	}
	tid := c.LastTraceID()
	if tid == 0 {
		t.Fatal("no trace id recorded for the round trip")
	}
	tr, ok := st.Get(tid)
	if !ok {
		t.Fatalf("span store lost trace %d", tid)
	}
	return tr
}

// agentSpans filters a trace down to its remote (agent-side) spans.
func agentSpans(tr telemetry.StoredTrace) []telemetry.Span {
	var out []telemetry.Span
	for _, sp := range tr.Spans {
		if sp.Component == "agent" {
			out = append(out, sp)
		}
	}
	return out
}

// Both sides span-aware: the query's trace interleaves controller
// stages with the agent's per-channel decomposition — a root dispatch
// span re-anchored under the controller's gather stage, channel
// children beneath it, every timestamp clamped inside the round trip.
func TestInteropSpansNegotiated(t *testing.T) {
	before := time.Now().UnixNano()
	c, st := spansAgentSetup(t, true, nil)
	tr := queryTrace(t, c, st)
	if got := c.NegotiatedCodec(); got != wire.CodecV2 {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecV2)
	}
	remote := agentSpans(tr)
	if len(remote) < 2 {
		t.Fatalf("want a dispatch root plus channel spans, got %+v", remote)
	}
	byID := make(map[uint64]telemetry.Span, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.ID] = sp
	}
	var sawDispatch, sawChannel bool
	now := time.Now().UnixNano()
	for _, sp := range remote {
		if sp.Name == "agent:dispatch" {
			sawDispatch = true
		}
		if strings.Contains(sp.Name, ":") && sp.Name != "agent:dispatch" {
			sawChannel = true
		}
		// Remapped parents must resolve to spans actually in the trace;
		// the agent's frame-local IDs never leak through.
		parent, ok := byID[sp.Parent]
		if sp.Parent == 0 || !ok {
			t.Fatalf("agent span %q has unresolved parent %d", sp.Name, sp.Parent)
		}
		_ = parent
		// Skew-corrected and clamped into the round trip: nothing lands
		// outside the test's own wall-clock window.
		if sp.Start < before || sp.End() > now {
			t.Fatalf("agent span %q outside round trip: start=%d end=%d window=[%d,%d]",
				sp.Name, sp.Start, sp.End(), before, now)
		}
	}
	if !sawDispatch || !sawChannel {
		t.Fatalf("missing dispatch root or channel span: %+v", remote)
	}
}

// A span-blind agent (an old build) behind a span-requesting controller
// keeps answering plain v2 responses: the trace exists with its
// controller-side stages, but carries no agent spans.
func TestInteropSpanBlindAgent(t *testing.T) {
	c, st := spansAgentSetup(t, false, nil)
	tr := queryTrace(t, c, st)
	if got := c.NegotiatedCodec(); got != wire.CodecV2 {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecV2)
	}
	if remote := agentSpans(tr); len(remote) != 0 {
		t.Fatalf("span-blind agent produced spans: %+v", remote)
	}
	if tr.SpanCount == 0 {
		t.Fatal("controller-side stages missing from the trace")
	}
}

// A span-blind controller (Spans never requested) against a
// span-capable agent gets plain responses — the agent only decorates
// frames for sessions that asked.
func TestInteropSpanBlindController(t *testing.T) {
	c, st := spansAgentSetup(t, true, func(c *TCPClient) { c.Spans = false })
	tr := queryTrace(t, c, st)
	if got := c.NegotiatedCodec(); got != wire.CodecV2 {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecV2)
	}
	if remote := agentSpans(tr); len(remote) != 0 {
		t.Fatalf("agent pushed spans to a controller that never asked: %+v", remote)
	}
}

// A JSON-pinned controller skips negotiation entirely; the span
// capability needs the v2 session, so queries stay plain JSON and the
// trace holds controller stages only.
func TestInteropSpansJSONController(t *testing.T) {
	c, st := spansAgentSetup(t, true, func(c *TCPClient) { c.Codec = wire.CodecJSON })
	tr := queryTrace(t, c, st)
	if got := c.NegotiatedCodec(); got != wire.CodecJSON {
		t.Fatalf("negotiated %q; want %q", got, wire.CodecJSON)
	}
	if remote := agentSpans(tr); len(remote) != 0 {
		t.Fatalf("JSON session carried spans: %+v", remote)
	}
}

// The failure path records a structured status: a query against a dead
// agent fails in the connect stage and the summary says so.
func TestTraceStructuredFailure(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(reg, "controller", 8)
	c := NewTCPClient("127.0.0.1:1") // nothing listens here
	c.Timeout = 200 * time.Millisecond
	c.EnableTelemetry(reg, tracer)
	t.Cleanup(func() { c.Close() })
	if _, err := c.Query(wire.Query{All: true}); err == nil {
		t.Fatal("query against a dead agent succeeded")
	}
	recent := tracer.Recent()
	if len(recent) == 0 {
		t.Fatal("failed query left no trace summary")
	}
	sum := recent[len(recent)-1]
	if !sum.Failed() || sum.FailStage != telemetry.StageConnect {
		t.Fatalf("structured status = (err=%q, stage=%q), want connect failure", sum.Err, sum.FailStage)
	}
}
