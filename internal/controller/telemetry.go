package controller

import (
	"time"

	"perfsight/internal/telemetry"
)

// ctlMetrics is the controller's self-telemetry block. Like the agent's,
// it is resolved once at EnableTelemetry time and read through a single
// atomic pointer load on the query path.
type ctlMetrics struct {
	sweeps      *telemetry.Counter
	sweepErrors *telemetry.Counter
	sweepDur    *telemetry.Histogram
	inflight    *telemetry.Gauge
	retries     *telemetry.Counter
	skipped     *telemetry.Counter
}

// EnableTelemetry wires the controller's self-metrics into reg and
// returns a query-lifecycle tracer for its agent clients. Pass the
// tracer to each TCPClient.EnableTelemetry so trace IDs are unique
// across the whole fleet and per-stage timings land in one place.
func (c *Controller) EnableTelemetry(reg *telemetry.Registry) *telemetry.Tracer {
	m := &ctlMetrics{
		sweeps: reg.Counter("perfsight_controller_sweeps_total",
			"multi-machine Sample sweeps issued"),
		sweepErrors: reg.Counter("perfsight_controller_sweep_errors_total",
			"sweeps that returned at least one error"),
		sweepDur: reg.Histogram("perfsight_controller_sweep_duration_ns",
			"full Sample sweep latency across all machines, nanoseconds"),
		inflight: reg.Gauge("perfsight_controller_inflight_queries",
			"per-machine queries currently fanned out"),
		retries: reg.Counter("perfsight_controller_agent_retries_total",
			"per-agent query attempts beyond the first within a sweep"),
		skipped: reg.Counter("perfsight_controller_agents_skipped_total",
			"sweep queries skipped because the agent's breaker was open"),
	}
	reg.GaugeFunc("perfsight_controller_agents",
		"agents registered with the controller", func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(len(c.agents))
		})
	reg.GaugeFunc("perfsight_controller_breaker_open_agents",
		"agents whose failure breaker is currently open (sweeps skip them)",
		func() float64 { return float64(c.openBreakers()) })
	c.tel.Store(m)
	return telemetry.NewTracer(reg, "controller", 64)
}

// observeSweep records one Sample call; inert when telemetry is off.
func (c *Controller) observeSweep(start time.Time, err error) {
	m := c.tel.Load()
	if m == nil {
		return
	}
	m.sweeps.Inc()
	m.sweepDur.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		m.sweepErrors.Inc()
	}
}

// observeFanout tracks in-flight per-machine queries; inert when off.
func (c *Controller) observeFanout(d float64) {
	if m := c.tel.Load(); m != nil {
		m.inflight.Add(d)
	}
}

// observeRetry counts one per-agent retry; inert when telemetry is off.
func (c *Controller) observeRetry() {
	if m := c.tel.Load(); m != nil {
		m.retries.Inc()
	}
}

// observeSkip counts one breaker-skipped agent; inert when off.
func (c *Controller) observeSkip() {
	if m := c.tel.Load(); m != nil {
		m.skipped.Inc()
	}
}
