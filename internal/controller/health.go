package controller

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"perfsight/internal/core"
)

// The paper's scalability story (§7.3, Fig 9/16) assumes one statistics
// sweep costs one agent round trip, not fleet-size round trips. That only
// holds if the controller tolerates partial failure: a dead or stalled
// agent must cost at most one deadline once, and nothing afterwards until
// it recovers. This file implements the per-agent health tracker (a
// consecutive-failure circuit breaker) and the knobs bounding one sweep.

// ErrAgentSkipped marks a machine whose breaker was open when the sweep
// ran: the agent was not queried at all. Test with errors.Is.
var ErrAgentSkipped = errors.New("agent skipped: breaker open")

// SweepConfig bounds one fan-out collection sweep (Sample, SampleInterval,
// PingAgents). Set Controller.Sweep before the first sweep; the zero value
// disables every bound (sequential-seed semantics, minus the head-of-line
// blocking).
type SweepConfig struct {
	// Deadline is the wall-clock budget for one whole sweep. Per-agent
	// queries past it are abandoned and reported as errors; 0 = no bound.
	Deadline time.Duration
	// Retries is how many extra attempts a failed agent query gets within
	// the sweep (transport failures only — an agent that answered, even
	// partially, is not retried).
	Retries int
	// BackoffBase is the first retry delay; it doubles per retry with
	// equal jitter (half fixed, half random) to decorrelate a fleet of
	// retrying controllers. 0 defaults to 10ms when retries are enabled.
	BackoffBase time.Duration
	// BackoffMax caps the grown backoff delay. 0 = uncapped.
	BackoffMax time.Duration
	// BreakerThreshold is the consecutive-failure count that opens an
	// agent's breaker, after which sweeps skip it instead of re-paying
	// the dial timeout. 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// single half-open probe through. 0 probes on the next sweep.
	BreakerCooldown time.Duration
}

// DefaultSweepConfig returns the production bounds used by the cmd
// binaries: sweeps finish within 15s whatever the fleet does, one retry
// with 50ms–1s jittered backoff, and three strikes open a breaker for 30s.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Deadline:         15 * time.Second,
		Retries:          1,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Second,
	}
}

// BreakerState is one agent's circuit-breaker position.
type BreakerState int32

const (
	// BreakerClosed: healthy, queried normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: recently dead; sweeps skip the agent until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; exactly one probe query is in
	// flight, and its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String renders the state for logs and the health API.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// agentHealth tracks one agent's consecutive failures and breaker state.
type agentHealth struct {
	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
}

// allow reports whether a sweep may query the agent now. probe is true
// when the breaker just went half-open and this caller carries the single
// trial query (so it must not burn retries on a likely-dead agent).
func (h *agentHealth) allow(now time.Time, cooldown time.Duration) (probe, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case BreakerOpen:
		if now.Sub(h.openedAt) >= cooldown {
			h.state = BreakerHalfOpen
			return true, true
		}
		return false, false
	case BreakerHalfOpen:
		return false, false // a probe is already in flight
	default:
		return false, true
	}
}

// success records an answered query: failures reset, breaker closes.
func (h *agentHealth) success() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.state = BreakerClosed
	h.fails = 0
}

// failure records an unanswered query. A failed half-open probe re-opens
// immediately; otherwise the breaker opens at threshold (0 = never).
func (h *agentHealth) failure(now time.Time, threshold int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails++
	if h.state == BreakerHalfOpen || (threshold > 0 && h.fails >= threshold && h.state == BreakerClosed) {
		h.state = BreakerOpen
		h.openedAt = now
	}
}

// snapshot returns the state and consecutive-failure count.
func (h *agentHealth) snapshot() (BreakerState, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.fails
}

// AgentHealthInfo is the operator-visible health of one agent.
type AgentHealthInfo struct {
	State               BreakerState
	ConsecutiveFailures int
}

// AgentHealth reports a machine's breaker state. A machine never seen
// failing reads as closed with zero failures.
func (c *Controller) AgentHealth(m core.MachineID) AgentHealthInfo {
	c.healthMu.Lock()
	h := c.healths[m]
	c.healthMu.Unlock()
	if h == nil {
		return AgentHealthInfo{State: BreakerClosed}
	}
	s, f := h.snapshot()
	return AgentHealthInfo{State: s, ConsecutiveFailures: f}
}

// health returns (creating if needed) the tracker for a machine.
func (c *Controller) health(m core.MachineID) *agentHealth {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	h := c.healths[m]
	if h == nil {
		h = &agentHealth{}
		c.healths[m] = h
	}
	return h
}

// openBreakers counts agents currently skipped by sweeps.
func (c *Controller) openBreakers() int {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	n := 0
	for _, h := range c.healths {
		if s, _ := h.snapshot(); s == BreakerOpen {
			n++
		}
	}
	return n
}

// backoffDelay returns the attempt-th (1-based) retry delay: exponential
// growth from base with equal jitter, capped at max.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < 1<<40; i++ {
		d *= 2
	}
	if max > 0 && d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}
