package controller

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// Controller routes operator queries to agents and implements the basic
// monitoring utilities of Figure 6.
type Controller struct {
	mu     sync.RWMutex
	topo   *core.Topology
	agents map[core.MachineID]AgentClient

	// Wait implements the sleep(T) of the Figure 6 interval routines. In
	// live deployments it is time.Sleep; simulations advance virtual time
	// instead. Defaults to time.Sleep.
	Wait func(time.Duration)

	// Sweep bounds the concurrent collection sweeps (deadline, retry,
	// backoff, breaker). Set before the first Sample/PingAgents call;
	// defaults to DefaultSweepConfig().
	Sweep SweepConfig

	// now supplies breaker timestamps; tests may freeze it.
	now func() time.Time

	healthMu sync.Mutex
	healths  map[core.MachineID]*agentHealth

	// tel holds the optional self-telemetry block (see EnableTelemetry);
	// nil means uninstrumented.
	tel atomic.Pointer[ctlMetrics]
}

// New builds a controller over the given topology.
func New(topo *core.Topology) *Controller {
	if topo == nil {
		topo = core.NewTopology()
	}
	return &Controller{
		topo:    topo,
		agents:  make(map[core.MachineID]AgentClient),
		Wait:    time.Sleep,
		Sweep:   DefaultSweepConfig(),
		now:     time.Now,
		healths: make(map[core.MachineID]*agentHealth),
	}
}

// Topology returns the controller's tenant topology.
func (c *Controller) Topology() *core.Topology { return c.topo }

// RegisterAgent attaches the agent serving a physical server. Re-registering
// a machine (agent restarted on a new address) resets its breaker: the
// operator vouched for the new endpoint, so the next sweep tries it.
func (c *Controller) RegisterAgent(m core.MachineID, a AgentClient) {
	c.mu.Lock()
	c.agents[m] = a
	c.mu.Unlock()
	c.healthMu.Lock()
	delete(c.healths, m)
	c.healthMu.Unlock()
}

// Agent returns the client for a machine.
func (c *Controller) Agent(m core.MachineID) (AgentClient, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.agents[m]
	return a, ok
}

// LastTraceID reports the trace id of the most recent query round trip
// to the machine hosting eid (0 when the machine is unknown or its
// client untraced) — the anomaly pipeline's TraceOf hook, linking a
// sweep-detected incident to the trace of the sweep that detected it.
func (c *Controller) LastTraceID(eid core.ElementID) uint64 {
	a, ok := c.Agent(eid.Machine())
	if !ok {
		return 0
	}
	if t, ok := a.(interface{ LastTraceID() uint64 }); ok {
		return t.LastTraceID()
	}
	return 0
}

// locate finds the element's machine within the tenant's virtual network —
// the vNet[tenantID].elem[elementID] lookup of §4.3.
func (c *Controller) locate(tid core.TenantID, eid core.ElementID) (core.MachineID, error) {
	net, ok := c.topo.Tenants[tid]
	if !ok {
		return "", fmt.Errorf("controller: unknown tenant %q", tid)
	}
	info, ok := net.Elements[eid]
	if !ok {
		return "", fmt.Errorf("controller: tenant %q has no element %q", tid, eid)
	}
	return info.Machine, nil
}

// GetAttr fetches the given attributes of one element (Figure 6 GETATTR).
// Attribute identity is an AttrID end to end; the wire query carries the
// canonical names so any agent version understands it.
func (c *Controller) GetAttr(tid core.TenantID, eid core.ElementID, attrs ...core.AttrID) (core.Record, error) {
	m, err := c.locate(tid, eid)
	if err != nil {
		return core.Record{}, err
	}
	a, ok := c.Agent(m)
	if !ok {
		return core.Record{}, fmt.Errorf("controller: no agent registered for machine %q", m)
	}
	var names []string
	if len(attrs) > 0 {
		names = make([]string, len(attrs))
		for i, id := range attrs {
			names[i] = core.AttrName(id)
		}
	}
	recs, err := a.Query(wire.Query{Elements: []core.ElementID{eid}, Attrs: names})
	// Select the record for the requested element rather than trusting
	// position: an agent answering with extra or reordered records must
	// not silently misattribute another element's counters.
	for _, r := range recs {
		if r.Element == eid {
			return r, err
		}
	}
	if err != nil {
		return core.Record{}, err
	}
	return core.Record{}, fmt.Errorf("controller: element %q returned no record", eid)
}

// Sample fetches full records for a set of elements, batching one query
// per machine and fanning the machines out concurrently (§4.3's one-sweep
// cost model). A slow or dead agent costs at most Sweep.Deadline, not a
// serialized position in the fleet; its elements are simply absent from
// the partial result, and the returned error joins every per-machine
// failure (errors.Join), each prefixed with its machine.
func (c *Controller) Sample(tid core.TenantID, ids []core.ElementID) (map[core.ElementID]core.Record, error) {
	return c.SampleContext(context.Background(), tid, ids)
}

// SampleContext is Sample bounded by the caller's context on top of the
// configured sweep deadline.
func (c *Controller) SampleContext(ctx context.Context, tid core.TenantID, ids []core.ElementID) (recs map[core.ElementID]core.Record, err error) {
	start := time.Now()
	defer func() { c.observeSweep(start, err) }()
	byMachine := make(map[core.MachineID][]core.ElementID)
	for _, id := range ids {
		m, lerr := c.locate(tid, id)
		if lerr != nil {
			return nil, lerr
		}
		byMachine[m] = append(byMachine[m], id)
	}
	if c.Sweep.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Sweep.Deadline)
		defer cancel()
	}

	type result struct {
		m    core.MachineID
		recs []core.Record
		err  error
	}
	results := make(chan result, len(byMachine))
	for m, els := range byMachine {
		go func(m core.MachineID, els []core.ElementID) {
			c.observeFanout(1)
			defer c.observeFanout(-1)
			recs, err := c.collectMachine(ctx, m, wire.Query{Elements: els})
			results <- result{m, recs, err}
		}(m, els)
	}

	out := make(map[core.ElementID]core.Record, len(ids))
	failed := make(map[core.MachineID]error)
	for range byMachine {
		r := <-results
		for _, rec := range r.recs {
			out[rec.Element] = rec
		}
		if r.err != nil {
			failed[r.m] = r.err
		}
	}
	// Join failures in machine order so the error text is deterministic.
	machines := make([]core.MachineID, 0, len(failed))
	for m := range failed {
		machines = append(machines, m)
	}
	sort.Slice(machines, func(i, j int) bool { return machines[i] < machines[j] })
	var errs []error
	for _, m := range machines {
		errs = append(errs, fmt.Errorf("machine %s: %w", m, failed[m]))
	}
	return out, errors.Join(errs...)
}

// collectMachine runs one machine's query under the sweep's breaker,
// retry, and deadline policy.
func (c *Controller) collectMachine(ctx context.Context, m core.MachineID, q wire.Query) ([]core.Record, error) {
	a, ok := c.Agent(m)
	if !ok {
		return nil, fmt.Errorf("controller: no agent for machine %q", m)
	}
	h := c.health(m)
	probe, ok := h.allow(c.now(), c.Sweep.BreakerCooldown)
	if !ok {
		c.observeSkip()
		return nil, ErrAgentSkipped
	}
	attempts := 1 + c.Sweep.Retries
	if probe {
		attempts = 1 // a half-open probe gets one shot, no retries
	}
	var errs []error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.observeRetry()
			if err := sleepCtx(ctx, backoffDelay(c.Sweep.BackoffBase, c.Sweep.BackoffMax, i)); err != nil {
				errs = append(errs, err)
				break
			}
		}
		recs, err := queryCtx(ctx, a, q)
		if err == nil || len(recs) > 0 {
			// The agent answered. A partial in-band error (unknown
			// element after VM churn) is the agent working correctly,
			// not a transport failure — no retry, breaker stays closed.
			h.success()
			return recs, err
		}
		errs = append(errs, err)
		if ctx.Err() != nil {
			break
		}
	}
	h.failure(c.now(), c.Sweep.BreakerThreshold)
	return nil, errors.Join(errs...)
}

// queryCtx bounds a synchronous AgentClient.Query with ctx. An abandoned
// query's goroutine unblocks when the client's own I/O timeout fires and
// is then collected; the sweep does not wait for it.
func queryCtx(ctx context.Context, a AgentClient, q wire.Query) ([]core.Record, error) {
	if ctx.Done() == nil {
		return a.Query(q)
	}
	type reply struct {
		recs []core.Record
		err  error
	}
	ch := make(chan reply, 1)
	go func() {
		recs, err := a.Query(q)
		ch <- reply{recs, err}
	}()
	select {
	case r := <-ch:
		return r.recs, r.err
	case <-ctx.Done():
		return nil, fmt.Errorf("controller: query abandoned: %w", ctx.Err())
	}
}

// sleepCtx sleeps d or until ctx expires, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TenantElements returns the tenant's element IDs, optionally filtered by
// a predicate on the registered topology info.
func (c *Controller) TenantElements(tid core.TenantID, keep func(core.ElementID, core.ElementInfo) bool) []core.ElementID {
	net, ok := c.topo.Tenants[tid]
	if !ok {
		return nil
	}
	var out []core.ElementID
	for id, info := range net.Elements {
		if keep == nil || keep(id, info) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Interval is two snapshots of one element spanning a measurement window.
type Interval struct {
	Prev, Cur core.Record
}

// Delta returns the counter increase over the window.
func (iv Interval) Delta(attr core.AttrID) float64 {
	return iv.Cur.GetOr(attr, 0) - iv.Prev.GetOr(attr, 0)
}

// Seconds returns the window length.
func (iv Interval) Seconds() float64 {
	return time.Duration(iv.Cur.Timestamp - iv.Prev.Timestamp).Seconds()
}

// DropPackets returns packets dropped in the window, preferring the drop
// counter and falling back to the Figure 6 in−out formula.
func (iv Interval) DropPackets() float64 {
	if _, ok := iv.Cur.Get(core.AttrDropPackets); ok {
		return iv.Delta(core.AttrDropPackets)
	}
	return (iv.Cur.GetOr(core.AttrRxPackets, 0) - iv.Cur.GetOr(core.AttrTxPackets, 0)) -
		(iv.Prev.GetOr(core.AttrRxPackets, 0) - iv.Prev.GetOr(core.AttrTxPackets, 0))
}

// RxBps returns receive throughput over the window, bits/s.
func (iv Interval) RxBps() float64 {
	if s := iv.Seconds(); s > 0 {
		return iv.Delta(core.AttrRxBytes) * 8 / s
	}
	return 0
}

// TxBps returns transmit throughput over the window, bits/s.
func (iv Interval) TxBps() float64 {
	if s := iv.Seconds(); s > 0 {
		return iv.Delta(core.AttrTxBytes) * 8 / s
	}
	return 0
}

// InRate returns the middlebox input rate b_in/t_in in bits/s, and whether
// the input method ran at all (§5.2). A middlebox that moved no bytes while
// accumulating input time reads as rate 0 — fully blocked.
func (iv Interval) InRate() (bps float64, active bool) {
	db := iv.Delta(core.AttrInBytes)
	dtns := iv.Delta(core.AttrInTimeNS)
	if dtns <= 0 {
		return 0, false
	}
	return db * 8 / (dtns / 1e9), true
}

// OutRate returns the middlebox output rate b_out/t_out in bits/s.
func (iv Interval) OutRate() (bps float64, active bool) {
	db := iv.Delta(core.AttrOutBytes)
	dtns := iv.Delta(core.AttrOutTimeNS)
	if dtns <= 0 {
		return 0, false
	}
	return db * 8 / (dtns / 1e9), true
}

// SampleInterval takes two samples of the elements separated by window T.
// Elements that fail to answer either sample (agent down, VM migrated
// between the topology snapshot and the query) are omitted; the partial
// intervals are returned together with every error joined so callers can
// proceed best-effort — churn is normal in a cloud — while still seeing
// which machines failed.
func (c *Controller) SampleInterval(tid core.TenantID, ids []core.ElementID, T time.Duration) (map[core.ElementID]Interval, error) {
	prev, errPrev := c.Sample(tid, ids)
	c.Wait(T)
	cur, errCur := c.Sample(tid, ids)
	out := make(map[core.ElementID]Interval, len(ids))
	for id, p := range prev {
		if cu, ok := cur[id]; ok {
			out[id] = Interval{Prev: p, Cur: cu}
		}
	}
	return out, errors.Join(errPrev, errCur)
}

// GetThroughput implements Figure 6 GETTHROUGHPUT over attribute attr
// (e.g. rx_bytes), in bits per second.
func (c *Controller) GetThroughput(tid core.TenantID, eid core.ElementID, attr core.AttrID, T time.Duration) (float64, error) {
	r1, err := c.GetAttr(tid, eid, attr)
	if err != nil {
		return 0, err
	}
	c.Wait(T)
	r2, err := c.GetAttr(tid, eid, attr)
	if err != nil {
		return 0, err
	}
	iv := Interval{Prev: r1, Cur: r2}
	if s := iv.Seconds(); s > 0 {
		return iv.Delta(attr) * 8 / s, nil
	}
	return 0, fmt.Errorf("controller: zero-length interval for %s", eid)
}

// GetPktLoss implements Figure 6 GETPKTLOSS: packets lost at the element
// during the window.
func (c *Controller) GetPktLoss(tid core.TenantID, eid core.ElementID, T time.Duration) (float64, error) {
	r1, err := c.GetAttr(tid, eid)
	if err != nil {
		return 0, err
	}
	c.Wait(T)
	r2, err := c.GetAttr(tid, eid)
	if err != nil {
		return 0, err
	}
	return Interval{Prev: r1, Cur: r2}.DropPackets(), nil
}

// GetAvgPktSize implements Figure 6 GETAVGPKTSIZE over the receive
// counters, in bytes.
func (c *Controller) GetAvgPktSize(tid core.TenantID, eid core.ElementID, T time.Duration) (float64, error) {
	r1, err := c.GetAttr(tid, eid, core.AttrRxBytes, core.AttrRxPackets)
	if err != nil {
		return 0, err
	}
	c.Wait(T)
	r2, err := c.GetAttr(tid, eid, core.AttrRxBytes, core.AttrRxPackets)
	if err != nil {
		return 0, err
	}
	iv := Interval{Prev: r1, Cur: r2}
	pkts := iv.Delta(core.AttrRxPackets)
	if pkts <= 0 {
		return 0, fmt.Errorf("controller: no packets at %s during window", eid)
	}
	return iv.Delta(core.AttrRxBytes) / pkts, nil
}

// PingAgents measures controller-to-agent response time, fanning out one
// ping per machine under the sweep deadline. It doubles as the fleet's
// health probe: a reachable agent closes its breaker, an unreachable one
// counts a failure, so an operator dashboard polling PingAgents also
// drives breaker recovery. Machines that fail or miss the deadline are
// absent from the result.
func (c *Controller) PingAgents() map[core.MachineID]time.Duration {
	c.mu.RLock()
	agents := make(map[core.MachineID]AgentClient, len(c.agents))
	for m, a := range c.agents {
		agents[m] = a
	}
	c.mu.RUnlock()

	ctx := context.Background()
	if c.Sweep.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Sweep.Deadline)
		defer cancel()
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		out = make(map[core.MachineID]time.Duration, len(agents))
	)
	for m, a := range agents {
		wg.Add(1)
		go func(m core.MachineID, a AgentClient) {
			defer wg.Done()
			c.observeFanout(1)
			defer c.observeFanout(-1)
			d, err := pingCtx(ctx, a)
			h := c.health(m)
			if err != nil {
				h.failure(c.now(), c.Sweep.BreakerThreshold)
				return
			}
			h.success()
			mu.Lock()
			out[m] = d
			mu.Unlock()
		}(m, a)
	}
	wg.Wait()
	return out
}

// pingCtx bounds a synchronous Ping with ctx, like queryCtx.
func pingCtx(ctx context.Context, a AgentClient) (time.Duration, error) {
	if ctx.Done() == nil {
		return a.Ping()
	}
	type reply struct {
		d   time.Duration
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		d, err := a.Ping()
		ch <- reply{d, err}
	}()
	select {
	case r := <-ch:
		return r.d, r.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
