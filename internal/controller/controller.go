package controller

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// Controller routes operator queries to agents and implements the basic
// monitoring utilities of Figure 6.
type Controller struct {
	mu     sync.RWMutex
	topo   *core.Topology
	agents map[core.MachineID]AgentClient

	// Wait implements the sleep(T) of the Figure 6 interval routines. In
	// live deployments it is time.Sleep; simulations advance virtual time
	// instead. Defaults to time.Sleep.
	Wait func(time.Duration)

	// tel holds the optional self-telemetry block (see EnableTelemetry);
	// nil means uninstrumented.
	tel atomic.Pointer[ctlMetrics]
}

// New builds a controller over the given topology.
func New(topo *core.Topology) *Controller {
	if topo == nil {
		topo = core.NewTopology()
	}
	return &Controller{
		topo:   topo,
		agents: make(map[core.MachineID]AgentClient),
		Wait:   time.Sleep,
	}
}

// Topology returns the controller's tenant topology.
func (c *Controller) Topology() *core.Topology { return c.topo }

// RegisterAgent attaches the agent serving a physical server.
func (c *Controller) RegisterAgent(m core.MachineID, a AgentClient) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.agents[m] = a
}

// Agent returns the client for a machine.
func (c *Controller) Agent(m core.MachineID) (AgentClient, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.agents[m]
	return a, ok
}

// locate finds the element's machine within the tenant's virtual network —
// the vNet[tenantID].elem[elementID] lookup of §4.3.
func (c *Controller) locate(tid core.TenantID, eid core.ElementID) (core.MachineID, error) {
	net, ok := c.topo.Tenants[tid]
	if !ok {
		return "", fmt.Errorf("controller: unknown tenant %q", tid)
	}
	info, ok := net.Elements[eid]
	if !ok {
		return "", fmt.Errorf("controller: tenant %q has no element %q", tid, eid)
	}
	return info.Machine, nil
}

// GetAttr fetches the named attributes of one element (Figure 6 GETATTR).
func (c *Controller) GetAttr(tid core.TenantID, eid core.ElementID, attrs ...string) (core.Record, error) {
	m, err := c.locate(tid, eid)
	if err != nil {
		return core.Record{}, err
	}
	a, ok := c.Agent(m)
	if !ok {
		return core.Record{}, fmt.Errorf("controller: no agent registered for machine %q", m)
	}
	recs, err := a.Query(wire.Query{Elements: []core.ElementID{eid}, Attrs: attrs})
	if len(recs) == 0 {
		if err != nil {
			return core.Record{}, err
		}
		return core.Record{}, fmt.Errorf("controller: element %q returned no record", eid)
	}
	return recs[0], err
}

// Sample fetches full records for a set of elements, batching one query
// per machine.
func (c *Controller) Sample(tid core.TenantID, ids []core.ElementID) (recs map[core.ElementID]core.Record, err error) {
	start := time.Now()
	defer func() { c.observeSweep(start, err) }()
	byMachine := make(map[core.MachineID][]core.ElementID)
	for _, id := range ids {
		m, err := c.locate(tid, id)
		if err != nil {
			return nil, err
		}
		byMachine[m] = append(byMachine[m], id)
	}
	out := make(map[core.ElementID]core.Record, len(ids))
	var firstErr error
	machines := make([]core.MachineID, 0, len(byMachine))
	for m := range byMachine {
		machines = append(machines, m)
	}
	sort.Slice(machines, func(i, j int) bool { return machines[i] < machines[j] })
	for _, m := range machines {
		a, ok := c.Agent(m)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("controller: no agent for machine %q", m)
			}
			continue
		}
		recs, err := a.Query(wire.Query{Elements: byMachine[m]})
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for _, r := range recs {
			out[r.Element] = r
		}
	}
	return out, firstErr
}

// TenantElements returns the tenant's element IDs, optionally filtered by
// a predicate on the registered topology info.
func (c *Controller) TenantElements(tid core.TenantID, keep func(core.ElementID, core.ElementInfo) bool) []core.ElementID {
	net, ok := c.topo.Tenants[tid]
	if !ok {
		return nil
	}
	var out []core.ElementID
	for id, info := range net.Elements {
		if keep == nil || keep(id, info) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Interval is two snapshots of one element spanning a measurement window.
type Interval struct {
	Prev, Cur core.Record
}

// Delta returns the counter increase over the window.
func (iv Interval) Delta(attr string) float64 {
	return iv.Cur.GetOr(attr, 0) - iv.Prev.GetOr(attr, 0)
}

// Seconds returns the window length.
func (iv Interval) Seconds() float64 {
	return time.Duration(iv.Cur.Timestamp - iv.Prev.Timestamp).Seconds()
}

// DropPackets returns packets dropped in the window, preferring the drop
// counter and falling back to the Figure 6 in−out formula.
func (iv Interval) DropPackets() float64 {
	if _, ok := iv.Cur.Get(core.AttrDropPackets); ok {
		return iv.Delta(core.AttrDropPackets)
	}
	return (iv.Cur.GetOr(core.AttrRxPackets, 0) - iv.Cur.GetOr(core.AttrTxPackets, 0)) -
		(iv.Prev.GetOr(core.AttrRxPackets, 0) - iv.Prev.GetOr(core.AttrTxPackets, 0))
}

// RxBps returns receive throughput over the window, bits/s.
func (iv Interval) RxBps() float64 {
	if s := iv.Seconds(); s > 0 {
		return iv.Delta(core.AttrRxBytes) * 8 / s
	}
	return 0
}

// TxBps returns transmit throughput over the window, bits/s.
func (iv Interval) TxBps() float64 {
	if s := iv.Seconds(); s > 0 {
		return iv.Delta(core.AttrTxBytes) * 8 / s
	}
	return 0
}

// InRate returns the middlebox input rate b_in/t_in in bits/s, and whether
// the input method ran at all (§5.2). A middlebox that moved no bytes while
// accumulating input time reads as rate 0 — fully blocked.
func (iv Interval) InRate() (bps float64, active bool) {
	db := iv.Delta(core.AttrInBytes)
	dtns := iv.Delta(core.AttrInTimeNS)
	if dtns <= 0 {
		return 0, false
	}
	return db * 8 / (dtns / 1e9), true
}

// OutRate returns the middlebox output rate b_out/t_out in bits/s.
func (iv Interval) OutRate() (bps float64, active bool) {
	db := iv.Delta(core.AttrOutBytes)
	dtns := iv.Delta(core.AttrOutTimeNS)
	if dtns <= 0 {
		return 0, false
	}
	return db * 8 / (dtns / 1e9), true
}

// SampleInterval takes two samples of the elements separated by window T.
// Elements that fail to answer (agent down, VM migrated between the
// topology snapshot and the query) are omitted; the partial intervals are
// returned together with the first error so callers can proceed
// best-effort — churn is normal in a cloud.
func (c *Controller) SampleInterval(tid core.TenantID, ids []core.ElementID, T time.Duration) (map[core.ElementID]Interval, error) {
	prev, errPrev := c.Sample(tid, ids)
	c.Wait(T)
	cur, errCur := c.Sample(tid, ids)
	out := make(map[core.ElementID]Interval, len(ids))
	for id, p := range prev {
		if cu, ok := cur[id]; ok {
			out[id] = Interval{Prev: p, Cur: cu}
		}
	}
	err := errPrev
	if err == nil {
		err = errCur
	}
	return out, err
}

// GetThroughput implements Figure 6 GETTHROUGHPUT over attribute attr
// (e.g. rx_bytes), in bits per second.
func (c *Controller) GetThroughput(tid core.TenantID, eid core.ElementID, attr string, T time.Duration) (float64, error) {
	r1, err := c.GetAttr(tid, eid, attr)
	if err != nil {
		return 0, err
	}
	c.Wait(T)
	r2, err := c.GetAttr(tid, eid, attr)
	if err != nil {
		return 0, err
	}
	iv := Interval{Prev: r1, Cur: r2}
	if s := iv.Seconds(); s > 0 {
		return iv.Delta(attr) * 8 / s, nil
	}
	return 0, fmt.Errorf("controller: zero-length interval for %s", eid)
}

// GetPktLoss implements Figure 6 GETPKTLOSS: packets lost at the element
// during the window.
func (c *Controller) GetPktLoss(tid core.TenantID, eid core.ElementID, T time.Duration) (float64, error) {
	r1, err := c.GetAttr(tid, eid)
	if err != nil {
		return 0, err
	}
	c.Wait(T)
	r2, err := c.GetAttr(tid, eid)
	if err != nil {
		return 0, err
	}
	return Interval{Prev: r1, Cur: r2}.DropPackets(), nil
}

// GetAvgPktSize implements Figure 6 GETAVGPKTSIZE over the receive
// counters, in bytes.
func (c *Controller) GetAvgPktSize(tid core.TenantID, eid core.ElementID, T time.Duration) (float64, error) {
	r1, err := c.GetAttr(tid, eid, core.AttrRxBytes, core.AttrRxPackets)
	if err != nil {
		return 0, err
	}
	c.Wait(T)
	r2, err := c.GetAttr(tid, eid, core.AttrRxBytes, core.AttrRxPackets)
	if err != nil {
		return 0, err
	}
	iv := Interval{Prev: r1, Cur: r2}
	pkts := iv.Delta(core.AttrRxPackets)
	if pkts <= 0 {
		return 0, fmt.Errorf("controller: no packets at %s during window", eid)
	}
	return iv.Delta(core.AttrRxBytes) / pkts, nil
}

// PingAgents measures controller-to-agent response time per machine.
func (c *Controller) PingAgents() map[core.MachineID]time.Duration {
	c.mu.RLock()
	agents := make(map[core.MachineID]AgentClient, len(c.agents))
	for m, a := range c.agents {
		agents[m] = a
	}
	c.mu.RUnlock()
	out := make(map[core.MachineID]time.Duration, len(agents))
	for m, a := range agents {
		if d, err := a.Ping(); err == nil {
			out[m] = d
		}
	}
	return out
}
