package controller

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// stubClient is a scriptable AgentClient for sweep-policy tests.
type stubClient struct {
	mu       sync.Mutex
	calls    int
	failNext int           // fail this many queries before succeeding
	delay    time.Duration // per-query latency
	block    chan struct{} // non-nil: Query blocks until closed
	recs     []core.Record
}

func (s *stubClient) Query(q wire.Query) ([]core.Record, error) {
	s.mu.Lock()
	s.calls++
	fail := s.failNext > 0
	if fail {
		s.failNext--
	}
	delay, block, recs := s.delay, s.block, s.recs
	s.mu.Unlock()
	if block != nil {
		<-block
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return nil, errors.New("stub: transport down")
	}
	return recs, nil
}

func (s *stubClient) ListElements() ([]wire.ElementMeta, error) { return nil, nil }
func (s *stubClient) Ping() (time.Duration, error) {
	if _, err := s.Query(wire.Query{}); err != nil {
		return 0, err
	}
	return time.Microsecond, nil
}
func (s *stubClient) Close() error { return nil }

func (s *stubClient) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// sweepSetup builds a controller over n stub machines, one element each
// (element "mX/pnic" on machine "mX"), with no retries or breaker unless
// the test opts in.
func sweepSetup(t *testing.T, n int) (*Controller, []*stubClient, []core.ElementID) {
	t.Helper()
	topo := core.NewTopology()
	net := topo.Net("t1")
	ctl := New(topo)
	ctl.Sweep = SweepConfig{} // tests opt in to each bound explicitly
	stubs := make([]*stubClient, n)
	ids := make([]core.ElementID, n)
	for i := 0; i < n; i++ {
		m := core.MachineID("m" + string(rune('0'+i)))
		id := core.ElementID(string(m) + "/pnic")
		net.Add(id, core.ElementInfo{Machine: m, Kind: core.KindPNIC})
		stubs[i] = &stubClient{recs: []core.Record{{Element: id}}}
		ctl.RegisterAgent(m, stubs[i])
		ids[i] = id
	}
	return ctl, stubs, ids
}

// TestSampleFanoutIsConcurrent: four machines each taking ~150ms must
// sweep in about one machine's latency, not four.
func TestSampleFanoutIsConcurrent(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 4)
	for _, s := range stubs {
		s.delay = 150 * time.Millisecond
	}
	start := time.Now()
	recs, err := ctl.Sample("t1", ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records: %d; want 4", len(recs))
	}
	if el := time.Since(start); el > 450*time.Millisecond {
		t.Fatalf("sweep took %v; sequential-looking (4x150ms)", el)
	}
}

// TestSampleDeadlineBoundsStalledAgent: one agent never answers; the sweep
// returns the other machines' records within ~one deadline and names the
// stalled machine in the error.
func TestSampleDeadlineBoundsStalledAgent(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 3)
	ctl.Sweep.Deadline = 200 * time.Millisecond
	block := make(chan struct{})
	defer close(block)
	stubs[1].block = block

	start := time.Now()
	recs, err := ctl.Sample("t1", ids)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled agent produced no error")
	}
	if !strings.Contains(err.Error(), "machine m1") {
		t.Fatalf("error does not name the stalled machine: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("partial records: %d; want 2 surviving", len(recs))
	}
	if _, ok := recs["m1/pnic"]; ok {
		t.Fatal("stalled machine's element present")
	}
	if elapsed > 4*ctl.Sweep.Deadline {
		t.Fatalf("sweep took %v; deadline is %v", elapsed, ctl.Sweep.Deadline)
	}
}

// TestSampleRetriesWithBackoff: a transient one-shot failure is absorbed
// by the retry budget.
func TestSampleRetriesWithBackoff(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 1)
	ctl.Sweep.Retries = 2
	ctl.Sweep.BackoffBase = time.Millisecond
	stubs[0].failNext = 1
	recs, err := ctl.Sample("t1", ids)
	if err != nil {
		t.Fatalf("transient failure not retried: %v", err)
	}
	if len(recs) != 1 || stubs[0].callCount() != 2 {
		t.Fatalf("recs=%d calls=%d; want 1 rec after 2 calls", len(recs), stubs[0].callCount())
	}
}

// TestSampleJoinsAllMachineErrors: every failing machine appears in the
// joined error, not just the first.
func TestSampleJoinsAllMachineErrors(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 3)
	stubs[0].failNext = 1
	stubs[2].failNext = 1
	_, err := ctl.Sample("t1", ids)
	if err == nil {
		t.Fatal("no error for two dead machines")
	}
	for _, m := range []string{"machine m0", "machine m2"} {
		if !strings.Contains(err.Error(), m) {
			t.Fatalf("joined error missing %q: %v", m, err)
		}
	}
	if strings.Contains(err.Error(), "machine m1") {
		t.Fatalf("healthy machine blamed: %v", err)
	}
}

// TestBreakerOpensSkipsAndRecovers walks the full breaker lifecycle:
// failures open it, sweeps skip it (no query reaches the stub), the
// cooldown admits a half-open probe, and a successful probe closes it.
func TestBreakerOpensSkipsAndRecovers(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 1)
	ctl.Sweep.BreakerThreshold = 2
	ctl.Sweep.BreakerCooldown = time.Hour
	now := time.Unix(1000, 0)
	ctl.now = func() time.Time { return now }
	stubs[0].failNext = 2

	for i := 0; i < 2; i++ {
		if _, err := ctl.Sample("t1", ids); err == nil {
			t.Fatalf("sweep %d: dead agent produced no error", i)
		}
	}
	if h := ctl.AgentHealth("m0"); h.State != BreakerOpen || h.ConsecutiveFailures != 2 {
		t.Fatalf("after 2 failures: %+v", h)
	}

	// Open breaker: the sweep must skip without touching the agent.
	before := stubs[0].callCount()
	_, err := ctl.Sample("t1", ids)
	if !errors.Is(err, ErrAgentSkipped) {
		t.Fatalf("want ErrAgentSkipped, got %v", err)
	}
	if stubs[0].callCount() != before {
		t.Fatal("open breaker still queried the agent")
	}

	// Cooldown elapses: one probe goes through and closes the breaker.
	now = now.Add(2 * time.Hour)
	recs, err := ctl.Sample("t1", ids)
	if err != nil || len(recs) != 1 {
		t.Fatalf("half-open probe: recs=%d err=%v", len(recs), err)
	}
	if h := ctl.AgentHealth("m0"); h.State != BreakerClosed || h.ConsecutiveFailures != 0 {
		t.Fatalf("after successful probe: %+v", h)
	}
}

// TestBreakerFailedProbeReopens: a half-open probe that fails re-opens the
// breaker immediately, with no retry spent on it.
func TestBreakerFailedProbeReopens(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 1)
	ctl.Sweep.Retries = 3 // must NOT apply to the probe
	ctl.Sweep.BackoffBase = time.Millisecond
	ctl.Sweep.BreakerThreshold = 1
	now := time.Unix(1000, 0)
	ctl.now = func() time.Time { return now }
	stubs[0].failNext = 100

	if _, err := ctl.Sample("t1", ids); err == nil {
		t.Fatal("dead agent produced no error")
	}
	callsAfterOpen := stubs[0].callCount()
	now = now.Add(time.Hour)
	if _, err := ctl.Sample("t1", ids); err == nil {
		t.Fatal("failing probe produced no error")
	}
	if got := stubs[0].callCount(); got != callsAfterOpen+1 {
		t.Fatalf("probe used %d calls; want exactly 1", got-callsAfterOpen)
	}
	if h := ctl.AgentHealth("m0"); h.State != BreakerOpen {
		t.Fatalf("failed probe left breaker %v", h.State)
	}
}

// TestRegisterAgentResetsBreaker: re-registering a machine (operator
// restarted its agent) clears the open breaker.
func TestRegisterAgentResetsBreaker(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 1)
	ctl.Sweep.BreakerThreshold = 1
	ctl.Sweep.BreakerCooldown = time.Hour
	stubs[0].failNext = 1
	if _, err := ctl.Sample("t1", ids); err == nil {
		t.Fatal("dead agent produced no error")
	}
	if h := ctl.AgentHealth("m0"); h.State != BreakerOpen {
		t.Fatalf("breaker not open: %v", h.State)
	}
	fresh := &stubClient{recs: []core.Record{{Element: "m0/pnic"}}}
	ctl.RegisterAgent("m0", fresh)
	if recs, err := ctl.Sample("t1", ids); err != nil || len(recs) != 1 {
		t.Fatalf("re-registered agent skipped: recs=%d err=%v", len(recs), err)
	}
}

// TestSampleIntervalPartialOnAgentDeath: an agent dying between the two
// samples yields intervals for the survivors, omits the dead machine's
// elements, and the joined error names the machine.
func TestSampleIntervalPartialOnAgentDeath(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 2)
	ctl.Wait = func(d time.Duration) {
		// The agent on m1 dies during the measurement window.
		stubs[1].mu.Lock()
		stubs[1].failNext = 1 << 30
		stubs[1].mu.Unlock()
	}
	ivs, err := ctl.SampleInterval("t1", ids, time.Second)
	if err == nil {
		t.Fatal("mid-interval agent death produced no error")
	}
	if !strings.Contains(err.Error(), "machine m1") {
		t.Fatalf("error does not name the dead machine: %v", err)
	}
	if _, ok := ivs["m0/pnic"]; !ok {
		t.Fatal("surviving element's interval missing")
	}
	if _, ok := ivs["m1/pnic"]; ok {
		t.Fatal("dead machine's element got an interval")
	}
}

// TestPingAgentsConcurrentHealth: PingAgents fans out, reports reachable
// agents only, and drives the breaker both ways.
func TestPingAgentsConcurrentHealth(t *testing.T) {
	ctl, stubs, _ := sweepSetup(t, 3)
	ctl.Sweep.BreakerThreshold = 1
	stubs[2].failNext = 1

	rtts := ctl.PingAgents()
	if len(rtts) != 2 {
		t.Fatalf("reachable agents: %d; want 2", len(rtts))
	}
	if h := ctl.AgentHealth("m2"); h.State != BreakerOpen {
		t.Fatalf("failed ping did not open breaker: %v", h.State)
	}

	// The next ping sweep probes m2 (cooldown 0), finds it healthy, and
	// closes the breaker again.
	rtts = ctl.PingAgents()
	if len(rtts) != 3 {
		t.Fatalf("recovered fleet pings: %d; want 3", len(rtts))
	}
	if h := ctl.AgentHealth("m2"); h.State != BreakerClosed {
		t.Fatalf("successful ping did not close breaker: %v", h.State)
	}
}

// TestSweepTelemetryCounters: retries, skips, and breaker gauges land in
// the registry.
func TestSweepTelemetryCounters(t *testing.T) {
	ctl, stubs, ids := sweepSetup(t, 1)
	reg := telemetry.NewRegistry()
	ctl.EnableTelemetry(reg)
	ctl.Sweep.Retries = 1
	ctl.Sweep.BackoffBase = time.Millisecond
	ctl.Sweep.BreakerThreshold = 1
	ctl.Sweep.BreakerCooldown = time.Hour
	stubs[0].failNext = 1 << 30

	if _, err := ctl.Sample("t1", ids); err == nil {
		t.Fatal("dead agent produced no error")
	}
	if _, err := ctl.Sample("t1", ids); !errors.Is(err, ErrAgentSkipped) {
		t.Fatalf("want skip, got %v", err)
	}
	retries := reg.Counter("perfsight_controller_agent_retries_total", "")
	skipped := reg.Counter("perfsight_controller_agents_skipped_total", "")
	if retries.Value() == 0 {
		t.Fatal("retry counter never moved")
	}
	if skipped.Value() != 1 {
		t.Fatalf("skipped counter = %d; want 1", skipped.Value())
	}
}

// TestGetAttrSelectsMatchingRecord: extra or reordered records from an
// agent must not be misattributed to the requested element.
func TestGetAttrSelectsMatchingRecord(t *testing.T) {
	topo := core.NewTopology()
	net := topo.Net("t1")
	net.Add("m0/pnic", core.ElementInfo{Machine: "m0", Kind: core.KindPNIC})
	ctl := New(topo)
	ctl.Sweep = SweepConfig{}

	// Reordered: the matching record is second.
	stub := &stubClient{recs: []core.Record{
		{Element: "m0/vswitch", Attrs: []core.Attr{{ID: core.AttrRxBytes, Value: 999}}},
		{Element: "m0/pnic", Attrs: []core.Attr{{ID: core.AttrRxBytes, Value: 42}}},
	}}
	ctl.RegisterAgent("m0", stub)
	rec, err := ctl.GetAttr("t1", "m0/pnic", core.AttrRxBytes)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Element != "m0/pnic" || rec.GetOr(core.AttrRxBytes, 0) != 42 {
		t.Fatalf("misattributed record: %+v", rec)
	}

	// Only a wrong element answered: that is an error, not silent
	// misattribution.
	stub.mu.Lock()
	stub.recs = []core.Record{{Element: "m0/vswitch"}}
	stub.mu.Unlock()
	if _, err := ctl.GetAttr("t1", "m0/pnic"); err == nil {
		t.Fatal("mismatched record accepted")
	}
}
