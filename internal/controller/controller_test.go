package controller

import (
	"net"
	"testing"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/core"
	"perfsight/internal/wire"
)

// fakeElem serves scripted counters that advance on a virtual clock.
type fakeElem struct {
	id    core.ElementID
	kind  core.ElementKind
	attrs func(ts int64) []core.Attr
}

func (f *fakeElem) ID() core.ElementID     { return f.id }
func (f *fakeElem) Kind() core.ElementKind { return f.kind }
func (f *fakeElem) Snapshot(ts int64) core.Record {
	return core.Record{Timestamp: ts, Element: f.id, Attrs: f.attrs(ts)}
}

// testSetup builds a controller with one local agent whose counters grow
// linearly with the virtual clock, and a Wait that advances that clock.
func testSetup(t *testing.T) (*Controller, *agent.Agent) {
	t.Helper()
	var now int64 // virtual ns
	a := agent.New("m0", func() int64 { return now })
	// 1000 bytes and 10 packets per virtual second in, 8 out, 2 dropped.
	a.Register(&agent.DirectAdapter{E: &fakeElem{id: "m0/pnic", kind: core.KindPNIC,
		attrs: func(ts int64) []core.Attr {
			s := float64(ts) / 1e9
			return []core.Attr{
				{ID: core.AttrKind, Value: float64(core.KindPNIC)},
				{ID: core.AttrRxBytes, Value: 1000 * s},
				{ID: core.AttrRxPackets, Value: 10 * s},
				{ID: core.AttrTxPackets, Value: 8 * s},
				{ID: core.AttrDropPackets, Value: 2 * s},
			}
		}}})

	topo := core.NewTopology()
	topo.Net("t1").Add("m0/pnic", core.ElementInfo{Machine: "m0", Kind: core.KindPNIC})
	ctl := New(topo)
	ctl.Wait = func(d time.Duration) { now += int64(d) }
	ctl.RegisterAgent("m0", &LocalClient{A: a})
	return ctl, a
}

func TestGetAttr(t *testing.T) {
	ctl, _ := testSetup(t)
	rec, err := ctl.GetAttr("t1", "m0/pnic", core.AttrRxBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Attrs) != 1 || rec.Attrs[0].ID != core.AttrRxBytes {
		t.Fatalf("attrs: %v", rec.Attrs)
	}
}

func TestGetAttrUnknownTenantAndElement(t *testing.T) {
	ctl, _ := testSetup(t)
	if _, err := ctl.GetAttr("ghost", "m0/pnic"); err == nil {
		t.Fatal("unknown tenant accepted")
	}
	if _, err := ctl.GetAttr("t1", "m0/ghost"); err == nil {
		t.Fatal("unknown element accepted")
	}
}

func TestGetThroughput(t *testing.T) {
	ctl, _ := testSetup(t)
	bps, err := ctl.GetThroughput("t1", "m0/pnic", core.AttrRxBytes, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bps != 8000 { // 1000 B/s = 8000 bits/s
		t.Fatalf("throughput = %v; want 8000", bps)
	}
}

func TestGetPktLossUsesDropCounter(t *testing.T) {
	ctl, _ := testSetup(t)
	loss, err := ctl.GetPktLoss("t1", "m0/pnic", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if loss != 20 { // 2 drops per second
		t.Fatalf("loss = %v; want 20", loss)
	}
}

func TestGetPktLossFallsBackToInOut(t *testing.T) {
	iv := Interval{
		Prev: core.Record{Timestamp: 0, Attrs: []core.Attr{
			{ID: core.AttrRxPackets, Value: 0}, {ID: core.AttrTxPackets, Value: 0}}},
		Cur: core.Record{Timestamp: 1e9, Attrs: []core.Attr{
			{ID: core.AttrRxPackets, Value: 100}, {ID: core.AttrTxPackets, Value: 90}}},
	}
	if iv.DropPackets() != 10 {
		t.Fatalf("Figure 6 in-out loss = %v; want 10", iv.DropPackets())
	}
}

func TestGetAvgPktSize(t *testing.T) {
	ctl, _ := testSetup(t)
	sz, err := ctl.GetAvgPktSize("t1", "m0/pnic", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sz != 100 { // 1000 B / 10 packets
		t.Fatalf("avg size = %v; want 100", sz)
	}
}

func TestSampleIntervalRates(t *testing.T) {
	ctl, _ := testSetup(t)
	ivs, err := ctl.SampleInterval("t1", []core.ElementID{"m0/pnic"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	iv := ivs["m0/pnic"]
	if iv.Seconds() != 2 {
		t.Fatalf("window = %v s", iv.Seconds())
	}
	if iv.RxBps() != 8000 {
		t.Fatalf("rx bps = %v", iv.RxBps())
	}
}

func TestIntervalInOutRates(t *testing.T) {
	iv := Interval{
		Prev: core.Record{Timestamp: 0, Attrs: []core.Attr{
			{ID: core.AttrInBytes, Value: 0}, {ID: core.AttrInTimeNS, Value: 0},
			{ID: core.AttrOutBytes, Value: 0}, {ID: core.AttrOutTimeNS, Value: 0}}},
		Cur: core.Record{Timestamp: 1e9, Attrs: []core.Attr{
			{ID: core.AttrInBytes, Value: 1e6}, {ID: core.AttrInTimeNS, Value: 5e8},
			{ID: core.AttrOutBytes, Value: 0}, {ID: core.AttrOutTimeNS, Value: 0}}},
	}
	in, active := iv.InRate()
	if !active || in != 16e6 { // 1e6 B over 0.5 s = 16 Mbit/s
		t.Fatalf("in rate = %v active=%v", in, active)
	}
	if _, active := iv.OutRate(); active {
		t.Fatal("zero out time should be inactive")
	}
}

func TestTenantElementsFilter(t *testing.T) {
	ctl, _ := testSetup(t)
	all := ctl.TenantElements("t1", nil)
	if len(all) != 1 {
		t.Fatalf("elements: %v", all)
	}
	none := ctl.TenantElements("t1", func(_ core.ElementID, info core.ElementInfo) bool {
		return info.Kind == core.KindTUN
	})
	if len(none) != 0 {
		t.Fatalf("filter leaked: %v", none)
	}
}

func TestControllerNoAgentRegistered(t *testing.T) {
	topo := core.NewTopology()
	topo.Net("t1").Add("m9/pnic", core.ElementInfo{Machine: "m9"})
	ctl := New(topo)
	if _, err := ctl.GetAttr("t1", "m9/pnic"); err == nil {
		t.Fatal("missing agent accepted")
	}
}

// TestTCPClientAgainstLiveAgent exercises the full wire path.
func TestTCPClientAgainstLiveAgent(t *testing.T) {
	_, a := testSetup(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go a.Serve(ln)

	c := NewTCPClient(ln.Addr().String())
	defer c.Close()

	recs, err := c.Query(wire.Query{Elements: []core.ElementID{"m0/pnic"}})
	if err != nil || len(recs) != 1 {
		t.Fatalf("query: %v, %v", recs, err)
	}
	metas, err := c.ListElements()
	if err != nil || len(metas) != 1 || metas[0].Kind != core.KindPNIC {
		t.Fatalf("list: %v, %v", metas, err)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Partial errors surface alongside records.
	recs, err = c.Query(wire.Query{Elements: []core.ElementID{"m0/pnic", "m0/ghost"}})
	if err == nil {
		t.Fatal("partial error lost over the wire")
	}
	if len(recs) != 1 {
		t.Fatalf("partial records: %d", len(recs))
	}
}

func TestTCPClientReconnects(t *testing.T) {
	_, a := testSetup(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go a.Serve(ln)

	c := NewTCPClient(ln.Addr().String())
	defer c.Close()
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Kill the client's connection server-side by closing it client-side
	// and confirm the next request transparently redials.
	c.Close()
	if _, err := c.Ping(); err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
}

func TestTCPClientDialFailure(t *testing.T) {
	c := NewTCPClient("127.0.0.1:1") // nothing listening
	c.Timeout = 200 * time.Millisecond
	if _, err := c.Ping(); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}
