// Package controller implements the central PerfSight controller (§4.3):
// it holds the tenant topology (vNet[tenantID].elem[elementID]), routes
// statistics requests to the agents on the right physical servers, and
// offers the operator the Figure 6 utility routines (GetAttr,
// GetThroughput, GetPktLoss, GetAvgPktSize) that diagnostic applications
// build on.
package controller

import (
	"fmt"
	"net"
	"sync"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// AgentClient is the controller's view of one per-server agent.
type AgentClient interface {
	Query(q wire.Query) ([]core.Record, error)
	ListElements() ([]wire.ElementMeta, error)
	Ping() (time.Duration, error)
	Close() error
}

// LocalClient calls an in-process agent directly — used by simulations and
// tests that do not need the TCP path.
type LocalClient struct {
	A *agent.Agent
}

// Query implements AgentClient.
func (c *LocalClient) Query(q wire.Query) ([]core.Record, error) {
	return c.A.Fetch(q.Elements, q.Attrs, q.All)
}

// ListElements implements AgentClient.
func (c *LocalClient) ListElements() ([]wire.ElementMeta, error) {
	ids := c.A.Elements()
	out := make([]wire.ElementMeta, len(ids))
	for i, id := range ids {
		out[i] = wire.ElementMeta{ID: id}
	}
	return out, nil
}

// Ping implements AgentClient.
func (c *LocalClient) Ping() (time.Duration, error) {
	start := time.Now()
	_ = c.A.Machine()
	return time.Since(start), nil
}

// Close implements AgentClient.
func (c *LocalClient) Close() error { return nil }

// TCPClient talks to a remote agent over the wire protocol. Requests are
// serialized on one connection; an established connection that went stale
// is redialed once per request, while a fresh dial failure surfaces
// immediately (the controller's sweep layer owns retry and backoff).
//
// Each fresh connection starts with a codec hello (unless Codec pins
// JSON): peers that grant codec v2 switch the connection to the binary
// encoding, anyone else — including agents that predate v2 and answer
// the hello with an error — transparently stays on JSON.
type TCPClient struct {
	Addr    string
	Timeout time.Duration

	// Codec is the wire codec to offer: wire.CodecV2 (or empty, the
	// default) negotiates v2 with JSON fallback; wire.CodecJSON skips
	// the hello entirely. Set before the first request.
	Codec string

	// Delta requests delta-encoded sweep responses on v2 connections:
	// the agent resends only attrs whose values changed since this
	// connection's previous response. Set before the first request.
	Delta bool

	// Sketch requests sketch-based flow statistics: vswitch records carry
	// one constant-size `flow_sketch` payload attr instead of per-rule
	// counter enumeration. Agents that predate the capability ignore the
	// bit and keep enumerating, so it is safe to always request. Set
	// before the first request.
	Sketch bool

	mu         sync.Mutex
	link       *agentLink // nil when disconnected
	negotiated string     // codec of the last negotiation, for operators
	frameBuf   []byte
	nextID     uint64

	tracer     *telemetry.Tracer
	wireErrors *telemetry.Counter
	reconnects *telemetry.Counter
	agentDur   *telemetry.Histogram
	bytesTx    *telemetry.Counter
	bytesRx    *telemetry.Counter
	negV2      *telemetry.Counter
	negJSON    *telemetry.Counter
}

// NewTCPClient returns a client for the agent at addr.
func NewTCPClient(addr string) *TCPClient {
	return &TCPClient{Addr: addr, Timeout: 5 * time.Second}
}

// NegotiatedCodec reports the payload codec of the most recent
// connection ("" before the first successful dial).
func (c *TCPClient) NegotiatedCodec() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.negotiated
}

// EnableTelemetry instruments the client: every round trip becomes a
// query-lifecycle trace (encode → transport → agent_gather → decode) and
// wire failures/reconnects are counted. tracer is typically shared
// across every client of one controller so trace IDs are unique
// fleet-wide; both may be created with Controller.EnableTelemetry.
func (c *TCPClient) EnableTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) *TCPClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = tracer
	c.wireErrors = reg.Counter("perfsight_controller_wire_errors_total",
		"failed agent round trips (dial, frame, or id mismatch)")
	c.reconnects = reg.Counter("perfsight_controller_reconnects_total",
		"agent connections re-dialed after a stale-connection failure")
	c.agentDur = reg.Histogram("perfsight_controller_agent_gather_duration_ns",
		"agent-reported handling time per query, nanoseconds")
	c.bytesTx = reg.Counter("perfsight_controller_wire_bytes_total",
		"frame bytes exchanged with agents, including the 4-byte length header",
		telemetry.Label{Key: "dir", Value: "tx"})
	c.bytesRx = reg.Counter("perfsight_controller_wire_bytes_total",
		"frame bytes exchanged with agents, including the 4-byte length header",
		telemetry.Label{Key: "dir", Value: "rx"})
	c.negV2 = reg.Counter("perfsight_controller_codec_negotiations_total",
		"connections by negotiated wire codec",
		telemetry.Label{Key: "codec", Value: wire.CodecV2})
	c.negJSON = reg.Counter("perfsight_controller_codec_negotiations_total",
		"connections by negotiated wire codec",
		telemetry.Label{Key: "codec", Value: wire.CodecJSON})
	return c
}

// agentLink is one live connection and its session codec, bound
// together structurally: the codec's intern tables and delta baselines
// are connection-scoped, so client code can never hold a socket from one
// dial with the codec state of another — a redial after a mid-delta-chain
// kill always decodes against a freshly negotiated codec, never a stale
// baseline.
type agentLink struct {
	conn net.Conn
	sess wire.Codec
}

// dropConn closes and forgets the cached link (connection + codec as a
// pair).
func (c *TCPClient) dropConn() {
	if c.link != nil {
		c.link.conn.Close()
		c.link = nil
	}
}

// negotiate runs the codec hello on a freshly dialed connection and
// returns the session codec to use for its lifetime. The hello itself is
// always JSON — that is what makes the exchange safe against agents that
// predate v2: they answer with a JSON error frame, and the client simply
// keeps the JSON codec on the same connection.
func (c *TCPClient) negotiate(conn net.Conn) (wire.Codec, error) {
	c.nextID++
	hello := &wire.Message{
		Type:  wire.TypeHello,
		ID:    c.nextID,
		Hello: &wire.Hello{Codecs: []string{wire.CodecV2}, Delta: c.Delta, Sketch: c.Sketch},
	}
	payload, err := wire.Encode(hello)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, payload); err != nil {
		return nil, err
	}
	if c.bytesTx != nil {
		c.bytesTx.Add(uint64(len(payload)) + 4)
	}
	raw, err := wire.ReadFrameBuf(conn, &c.frameBuf)
	if err != nil {
		return nil, err
	}
	if c.bytesRx != nil {
		c.bytesRx.Add(uint64(len(raw)) + 4)
	}
	resp, err := wire.Decode(raw)
	if err != nil {
		return nil, err
	}
	if resp.ID != hello.ID {
		return nil, fmt.Errorf("controller: agent %s: hello response id %d for request %d", c.Addr, resp.ID, hello.ID)
	}
	if resp.Type == wire.TypeHelloAck && resp.Hello != nil && containsCodec(resp.Hello.Codecs, wire.CodecV2) {
		if c.negV2 != nil {
			c.negV2.Inc()
		}
		c.negotiated = wire.CodecV2
		return wire.NewV2Codec(c.Delta && resp.Hello.Delta), nil
	}
	// Anything else — an old agent's error frame, or an ack that grants
	// nothing — means the peer speaks JSON only.
	if c.negJSON != nil {
		c.negJSON.Inc()
	}
	c.negotiated = wire.CodecJSON
	return wire.JSONCodec{}, nil
}

func containsCodec(codecs []string, want string) bool {
	for _, s := range codecs {
		if s == want {
			return true
		}
	}
	return false
}

func (c *TCPClient) roundTrip(req *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID

	qt := c.tracer.Begin(c.Addr) // nil tracer → inert trace
	defer qt.End()
	req.TraceID = qt.ID()

	// Encoding happens inside try(), after negotiation: the payload codec
	// is connection-scoped (intern tables, delta state), and a redial may
	// renegotiate it.
	try := func() (*wire.Message, error) {
		if c.link == nil {
			conn, err := net.DialTimeout("tcp", c.Addr, c.Timeout)
			if err != nil {
				return nil, fmt.Errorf("controller: dial agent %s: %w", c.Addr, err)
			}
			if c.Timeout > 0 {
				if err := conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
					conn.Close()
					return nil, fmt.Errorf("controller: set deadline for agent %s: %w", c.Addr, err)
				}
			}
			sess := wire.Codec(wire.JSONCodec{})
			if c.Codec != wire.CodecJSON {
				sess, err = c.negotiate(conn)
				if err != nil {
					conn.Close()
					return nil, fmt.Errorf("controller: negotiate with agent %s: %w", c.Addr, err)
				}
			} else {
				c.negotiated = wire.CodecJSON
			}
			c.link = &agentLink{conn: conn, sess: sess}
		}
		link := c.link
		if c.Timeout > 0 {
			if err := link.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
				return nil, fmt.Errorf("controller: set deadline for agent %s: %w", c.Addr, err)
			}
		}
		stopEncode := qt.Time(telemetry.StageEncode)
		payload, err := link.sess.Encode(req)
		stopEncode()
		if err != nil {
			return nil, err
		}
		wireStart := time.Now()
		if err := wire.WriteFrame(link.conn, payload); err != nil {
			return nil, err
		}
		if c.bytesTx != nil {
			c.bytesTx.Add(uint64(len(payload)) + 4)
		}
		raw, err := wire.ReadFrameBuf(link.conn, &c.frameBuf)
		if err != nil {
			return nil, err
		}
		if c.bytesRx != nil {
			c.bytesRx.Add(uint64(len(raw)) + 4)
		}
		transport := time.Since(wireStart)
		stopDecode := qt.Time(telemetry.StageDecode)
		resp, err := link.sess.Decode(raw)
		stopDecode()
		if err != nil {
			return nil, err
		}
		// The synchronous round trip includes the agent's own handling
		// time; subtract what the agent reports so the transport stage
		// is wire time, not gather time.
		if resp.AgentNS > 0 {
			agentTime := time.Duration(resp.AgentNS)
			if agentTime > transport {
				agentTime = transport
			}
			qt.Record(telemetry.StageGather, agentTime)
			transport -= agentTime
			if c.agentDur != nil {
				c.agentDur.Observe(float64(resp.AgentNS))
			}
		}
		qt.Record(telemetry.StageTransport, transport)
		return resp, nil
	}

	// Only a request that started on an established connection earns the
	// one transparent redial: the cached conn may have gone stale since
	// the last request. A failure on a freshly dialed connection (dial
	// refused, or the agent died mid-handshake) is reported immediately —
	// retry policy with backoff belongs to the sweep layer, not here.
	hadConn := c.link != nil
	resp, err := try()
	if err != nil {
		c.dropConn()
		if hadConn {
			if c.reconnects != nil {
				c.reconnects.Inc()
			}
			resp, err = try()
		}
		if err != nil {
			c.dropConn()
			if c.wireErrors != nil {
				c.wireErrors.Inc()
			}
			qt.Fail()
			return nil, err
		}
	}
	if resp.ID != req.ID {
		c.dropConn()
		if c.wireErrors != nil {
			c.wireErrors.Inc()
		}
		qt.Fail()
		return nil, fmt.Errorf("controller: agent %s: response id %d for request %d", c.Addr, resp.ID, req.ID)
	}
	return resp, nil
}

// Query implements AgentClient.
func (c *TCPClient) Query(q wire.Query) ([]core.Record, error) {
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypeQuery, Query: &q})
	if err != nil {
		return nil, err
	}
	if resp.Type == wire.TypeError {
		return nil, fmt.Errorf("controller: agent %s: %s", c.Addr, resp.Error)
	}
	if resp.Error != "" {
		return resp.Records, fmt.Errorf("controller: agent %s: partial: %s", c.Addr, resp.Error)
	}
	return resp.Records, nil
}

// ListElements implements AgentClient.
func (c *TCPClient) ListElements() ([]wire.ElementMeta, error) {
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypeListElements})
	if err != nil {
		return nil, err
	}
	if resp.Type == wire.TypeError {
		return nil, fmt.Errorf("controller: agent %s: %s", c.Addr, resp.Error)
	}
	return resp.Elements, nil
}

// Ping implements AgentClient.
func (c *TCPClient) Ping() (time.Duration, error) {
	start := time.Now()
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypePing})
	if err != nil {
		return 0, err
	}
	if resp.Type != wire.TypePong {
		return 0, fmt.Errorf("controller: agent %s: unexpected %s to ping", c.Addr, resp.Type)
	}
	return time.Since(start), nil
}

// Close implements AgentClient.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.link != nil {
		err := c.link.conn.Close()
		c.link = nil
		return err
	}
	return nil
}
