// Package controller implements the central PerfSight controller (§4.3):
// it holds the tenant topology (vNet[tenantID].elem[elementID]), routes
// statistics requests to the agents on the right physical servers, and
// offers the operator the Figure 6 utility routines (GetAttr,
// GetThroughput, GetPktLoss, GetAvgPktSize) that diagnostic applications
// build on.
package controller

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// AgentClient is the controller's view of one per-server agent.
type AgentClient interface {
	Query(q wire.Query) ([]core.Record, error)
	ListElements() ([]wire.ElementMeta, error)
	Ping() (time.Duration, error)
	Close() error
}

// LocalClient calls an in-process agent directly — used by simulations and
// tests that do not need the TCP path.
type LocalClient struct {
	A *agent.Agent
}

// Query implements AgentClient.
func (c *LocalClient) Query(q wire.Query) ([]core.Record, error) {
	return c.A.Fetch(q.Elements, q.Attrs, q.All)
}

// ListElements implements AgentClient.
func (c *LocalClient) ListElements() ([]wire.ElementMeta, error) {
	ids := c.A.Elements()
	out := make([]wire.ElementMeta, len(ids))
	for i, id := range ids {
		out[i] = wire.ElementMeta{ID: id}
	}
	return out, nil
}

// Ping implements AgentClient.
func (c *LocalClient) Ping() (time.Duration, error) {
	start := time.Now()
	_ = c.A.Machine()
	return time.Since(start), nil
}

// Close implements AgentClient.
func (c *LocalClient) Close() error { return nil }

// TCPClient talks to a remote agent over the wire protocol. Requests are
// serialized on one connection; an established connection that went stale
// is redialed once per request, while a fresh dial failure surfaces
// immediately (the controller's sweep layer owns retry and backoff).
//
// Each fresh connection starts with a codec hello (unless Codec pins
// JSON): peers that grant codec v2 switch the connection to the binary
// encoding, anyone else — including agents that predate v2 and answer
// the hello with an error — transparently stays on JSON.
type TCPClient struct {
	Addr    string
	Timeout time.Duration

	// Codec is the wire codec to offer: wire.CodecV2 (or empty, the
	// default) negotiates v2 with JSON fallback; wire.CodecJSON skips
	// the hello entirely. Set before the first request.
	Codec string

	// Delta requests delta-encoded sweep responses on v2 connections:
	// the agent resends only attrs whose values changed since this
	// connection's previous response. Set before the first request.
	Delta bool

	// Sketch requests sketch-based flow statistics: vswitch records carry
	// one constant-size `flow_sketch` payload attr instead of per-rule
	// counter enumeration. Agents that predate the capability ignore the
	// bit and keep enumerating, so it is safe to always request. Set
	// before the first request.
	Sketch bool

	// Spans requests span-decorated responses on v2 connections: the
	// agent piggybacks a per-channel timing decomposition of every gather
	// on its response frames, which the client remaps into its
	// query-lifecycle trace with skew-corrected timestamps. Agents that
	// predate the capability ignore the bit and keep the plain agent_ns
	// split. Set before the first request.
	Spans bool

	mu         sync.Mutex
	link       *agentLink // nil when disconnected
	negotiated string     // codec of the last negotiation, for operators
	frameBuf   []byte
	nextID     uint64
	lastTrace  atomic.Uint64 // trace id of the most recent round trip

	tracer     *telemetry.Tracer
	wireErrors *telemetry.Counter
	reconnects *telemetry.Counter
	agentDur   *telemetry.Histogram
	bytesTx    *telemetry.Counter
	bytesRx    *telemetry.Counter
	negV2      *telemetry.Counter
	negJSON    *telemetry.Counter
}

// NewTCPClient returns a client for the agent at addr.
func NewTCPClient(addr string) *TCPClient {
	return &TCPClient{Addr: addr, Timeout: 5 * time.Second}
}

// SkewOffset reports the live connection's agent-minus-controller clock
// offset estimate in nanoseconds, and whether the link has observed any
// sample. Connection-scoped: a redial starts a fresh estimate. Exposed so
// operators (and the chaos lab) can read the per-agent skew the span
// correction uses.
func (c *TCPClient) SkewOffset() (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.link == nil {
		return 0, false
	}
	return c.link.skew.Offset()
}

// NegotiatedCodec reports the payload codec of the most recent
// connection ("" before the first successful dial).
func (c *TCPClient) NegotiatedCodec() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.negotiated
}

// EnableTelemetry instruments the client: every round trip becomes a
// query-lifecycle trace (encode → transport → agent_gather → decode) and
// wire failures/reconnects are counted. tracer is typically shared
// across every client of one controller so trace IDs are unique
// fleet-wide; both may be created with Controller.EnableTelemetry.
func (c *TCPClient) EnableTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) *TCPClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = tracer
	c.wireErrors = reg.Counter("perfsight_controller_wire_errors_total",
		"failed agent round trips (dial, frame, or id mismatch)")
	c.reconnects = reg.Counter("perfsight_controller_reconnects_total",
		"agent connections re-dialed after a stale-connection failure")
	c.agentDur = reg.Histogram("perfsight_controller_agent_gather_duration_ns",
		"agent-reported handling time per query, nanoseconds")
	c.bytesTx = reg.Counter("perfsight_controller_wire_bytes_total",
		"frame bytes exchanged with agents, including the 4-byte length header",
		telemetry.Label{Key: "dir", Value: "tx"})
	c.bytesRx = reg.Counter("perfsight_controller_wire_bytes_total",
		"frame bytes exchanged with agents, including the 4-byte length header",
		telemetry.Label{Key: "dir", Value: "rx"})
	c.negV2 = reg.Counter("perfsight_controller_codec_negotiations_total",
		"connections by negotiated wire codec",
		telemetry.Label{Key: "codec", Value: wire.CodecV2})
	c.negJSON = reg.Counter("perfsight_controller_codec_negotiations_total",
		"connections by negotiated wire codec",
		telemetry.Label{Key: "codec", Value: wire.CodecJSON})
	return c
}

// agentLink is one live connection and its session codec, bound
// together structurally: the codec's intern tables and delta baselines
// are connection-scoped, so client code can never hold a socket from one
// dial with the codec state of another — a redial after a mid-delta-chain
// kill always decodes against a freshly negotiated codec, never a stale
// baseline.
type agentLink struct {
	conn net.Conn
	sess wire.Codec

	// spans reports whether the session negotiated span-decorated
	// responses; skew is the connection-scoped clock-offset estimate for
	// this agent, fed by every round trip's timestamp pair and reset by
	// redialing (a fresh link gets a fresh estimator, so an agent restart
	// with a stepped clock never inherits a stale offset).
	spans bool
	skew  *telemetry.SkewEstimator
}

// dropConn closes and forgets the cached link (connection + codec as a
// pair).
func (c *TCPClient) dropConn() {
	if c.link != nil {
		c.link.conn.Close()
		c.link = nil
	}
}

// negotiate runs the codec hello on a freshly dialed connection and
// returns the link (connection + session codec + per-connection skew
// estimator) to use for its lifetime. The hello itself is always JSON —
// that is what makes the exchange safe against agents that predate v2:
// they answer with a JSON error frame, and the client simply keeps the
// JSON codec on the same connection. The ack's agent_ts seeds the skew
// estimate before the first query.
func (c *TCPClient) negotiate(conn net.Conn) (*agentLink, error) {
	c.nextID++
	hello := &wire.Message{
		Type: wire.TypeHello,
		ID:   c.nextID,
		Hello: &wire.Hello{Codecs: []string{wire.CodecV2},
			Delta: c.Delta, Sketch: c.Sketch, Spans: c.Spans},
	}
	payload, err := wire.Encode(hello)
	if err != nil {
		return nil, err
	}
	sendNS := time.Now().UnixNano()
	if err := wire.WriteFrame(conn, payload); err != nil {
		return nil, err
	}
	if c.bytesTx != nil {
		c.bytesTx.Add(uint64(len(payload)) + 4)
	}
	raw, err := wire.ReadFrameBuf(conn, &c.frameBuf)
	recvNS := time.Now().UnixNano()
	if err != nil {
		return nil, err
	}
	if c.bytesRx != nil {
		c.bytesRx.Add(uint64(len(raw)) + 4)
	}
	resp, err := wire.Decode(raw)
	if err != nil {
		return nil, err
	}
	if resp.ID != hello.ID {
		return nil, fmt.Errorf("controller: agent %s: hello response id %d for request %d", c.Addr, resp.ID, hello.ID)
	}
	link := &agentLink{conn: conn, skew: &telemetry.SkewEstimator{}}
	if resp.AgentTS != 0 {
		link.skew.Observe(sendNS, recvNS, resp.AgentTS, 0)
	}
	if resp.Type == wire.TypeHelloAck && resp.Hello != nil && containsCodec(resp.Hello.Codecs, wire.CodecV2) {
		if c.negV2 != nil {
			c.negV2.Inc()
		}
		c.negotiated = wire.CodecV2
		sess := wire.NewV2Codec(c.Delta && resp.Hello.Delta)
		if c.Spans && resp.Hello.Spans {
			sess.EnableSpans()
			link.spans = true
		}
		link.sess = sess
		return link, nil
	}
	// Anything else — an old agent's error frame, or an ack that grants
	// nothing — means the peer speaks JSON only.
	if c.negJSON != nil {
		c.negJSON.Inc()
	}
	c.negotiated = wire.CodecJSON
	link.sess = wire.JSONCodec{}
	return link, nil
}

func containsCodec(codecs []string, want string) bool {
	for _, s := range codecs {
		if s == want {
			return true
		}
	}
	return false
}

func (c *TCPClient) roundTrip(req *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID

	qt := c.tracer.Begin(c.Addr) // nil tracer → inert trace
	defer qt.End()
	req.TraceID = qt.ID()

	// Encoding happens inside try(), after negotiation: the payload codec
	// is connection-scoped (intern tables, delta state), and a redial may
	// renegotiate it. failStage names the stage of the most recent
	// failure so the trace's structured status points at connect vs
	// encode vs transport vs decode. Stage timings are recorded with
	// explicit time.Now() pairs, not qt.Time closures — the closure
	// allocates, and this path must stay allocation-free per sweep query.
	failStage := telemetry.StageConnect
	try := func() (*wire.Message, error) {
		if c.link == nil {
			connStart := time.Now()
			conn, err := net.DialTimeout("tcp", c.Addr, c.Timeout)
			if err != nil {
				failStage = telemetry.StageConnect
				return nil, fmt.Errorf("controller: dial agent %s: %w", c.Addr, err)
			}
			if c.Timeout > 0 {
				if err := conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
					conn.Close()
					failStage = telemetry.StageConnect
					return nil, fmt.Errorf("controller: set deadline for agent %s: %w", c.Addr, err)
				}
			}
			if c.Codec != wire.CodecJSON {
				link, err := c.negotiate(conn)
				if err != nil {
					conn.Close()
					failStage = telemetry.StageConnect
					return nil, fmt.Errorf("controller: negotiate with agent %s: %w", c.Addr, err)
				}
				c.link = link
			} else {
				c.negotiated = wire.CodecJSON
				c.link = &agentLink{conn: conn, sess: wire.JSONCodec{}, skew: &telemetry.SkewEstimator{}}
			}
			qt.Record(telemetry.StageConnect, time.Since(connStart))
		}
		link := c.link
		if c.Timeout > 0 {
			if err := link.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
				failStage = telemetry.StageTransport
				return nil, fmt.Errorf("controller: set deadline for agent %s: %w", c.Addr, err)
			}
		}
		encStart := time.Now()
		payload, err := link.sess.Encode(req)
		qt.Record(telemetry.StageEncode, time.Since(encStart))
		if err != nil {
			failStage = telemetry.StageEncode
			return nil, err
		}
		wireStart := time.Now()
		if err := wire.WriteFrame(link.conn, payload); err != nil {
			failStage = telemetry.StageTransport
			return nil, err
		}
		if c.bytesTx != nil {
			c.bytesTx.Add(uint64(len(payload)) + 4)
		}
		raw, err := wire.ReadFrameBuf(link.conn, &c.frameBuf)
		recvT := time.Now()
		if err != nil {
			failStage = telemetry.StageTransport
			return nil, err
		}
		if c.bytesRx != nil {
			c.bytesRx.Add(uint64(len(raw)) + 4)
		}
		transport := recvT.Sub(wireStart)
		decStart := time.Now()
		resp, err := link.sess.Decode(raw)
		qt.Record(telemetry.StageDecode, time.Since(decStart))
		if err != nil {
			failStage = telemetry.StageDecode
			return nil, err
		}
		// Every response carrying the agent's clock feeds the link's skew
		// estimate: offset = agent_ts − round-trip midpoint − handling/2.
		if resp.AgentTS != 0 {
			link.skew.Observe(wireStart.UnixNano(), recvT.UnixNano(), resp.AgentTS, resp.AgentNS)
		}
		// The synchronous round trip includes the agent's own handling
		// time; subtract what the agent reports so the transport stage
		// is wire time, not gather time.
		var gatherID uint64
		if resp.AgentNS > 0 {
			agentTime := time.Duration(resp.AgentNS)
			if agentTime > transport {
				agentTime = transport
			}
			gatherID = qt.RecordSpan(telemetry.StageGather, agentTime)
			transport -= agentTime
			if c.agentDur != nil {
				c.agentDur.Observe(float64(resp.AgentNS))
			}
		}
		qt.Record(telemetry.StageTransport, transport)
		if len(resp.AgentSpans) > 0 {
			ingestAgentSpans(qt, gatherID, resp.AgentSpans, wireStart.UnixNano(), recvT.UnixNano(), link.skew)
		}
		return resp, nil
	}

	// Only a request that started on an established connection earns the
	// one transparent redial: the cached conn may have gone stale since
	// the last request. A failure on a freshly dialed connection (dial
	// refused, or the agent died mid-handshake) is reported immediately —
	// retry policy with backoff belongs to the sweep layer, not here.
	hadConn := c.link != nil
	resp, err := try()
	if err != nil {
		c.dropConn()
		if hadConn {
			if c.reconnects != nil {
				c.reconnects.Inc()
			}
			resp, err = try()
		}
		if err != nil {
			c.dropConn()
			if c.wireErrors != nil {
				c.wireErrors.Inc()
			}
			qt.Fail(failStage, err)
			return nil, err
		}
	}
	if resp.ID != req.ID {
		c.dropConn()
		if c.wireErrors != nil {
			c.wireErrors.Inc()
		}
		err := fmt.Errorf("controller: agent %s: response id %d for request %d", c.Addr, resp.ID, req.ID)
		qt.Fail(telemetry.StageDecode, err)
		return nil, err
	}
	c.lastTrace.Store(qt.ID())
	return resp, nil
}

// LastTraceID reports the trace id of the client's most recent round
// trip — what an anomaly fired from this agent's records should
// reference.
func (c *TCPClient) LastTraceID() uint64 { return c.lastTrace.Load() }

// ingestAgentSpans remaps one response's frame-local agent spans into
// the query trace: span IDs are reassigned by the tracer, parents are
// translated through the id table (parent 0 — the agent's root — is
// re-anchored under the controller's gather span), and timestamps are
// shifted by the link's clock-offset estimate then clamped into the
// round-trip window so a nonsense agent clock can never produce a span
// outside the query that carried it.
func ingestAgentSpans(qt *telemetry.QueryTrace, gatherID uint64, spans []wire.Span, sendNS, recvNS int64, skew *telemetry.SkewEstimator) {
	offset, _ := skew.Offset()
	var ids [telemetry.MaxSpansPerTrace + 1]uint64
	for i := range spans {
		sp := &spans[i]
		// offset is agent-clock minus controller-clock; subtracting moves
		// the agent timestamp onto the controller's timeline.
		start, dur := telemetry.ClampSpanWindow(sp.StartNS-offset, sp.DurNS, sendNS, recvNS)
		parent := gatherID
		if sp.Parent != 0 && sp.Parent < uint64(len(ids)) && ids[sp.Parent] != 0 {
			parent = ids[sp.Parent]
		}
		id := qt.AddSpan("agent", sp.Name, start, dur, parent, sp.Status)
		if sp.ID < uint64(len(ids)) {
			ids[sp.ID] = id
		}
	}
}

// Query implements AgentClient.
func (c *TCPClient) Query(q wire.Query) ([]core.Record, error) {
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypeQuery, Query: &q})
	if err != nil {
		return nil, err
	}
	if resp.Type == wire.TypeError {
		return nil, fmt.Errorf("controller: agent %s: %s", c.Addr, resp.Error)
	}
	if resp.Error != "" {
		return resp.Records, fmt.Errorf("controller: agent %s: partial: %s", c.Addr, resp.Error)
	}
	return resp.Records, nil
}

// ListElements implements AgentClient.
func (c *TCPClient) ListElements() ([]wire.ElementMeta, error) {
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypeListElements})
	if err != nil {
		return nil, err
	}
	if resp.Type == wire.TypeError {
		return nil, fmt.Errorf("controller: agent %s: %s", c.Addr, resp.Error)
	}
	return resp.Elements, nil
}

// Ping implements AgentClient.
func (c *TCPClient) Ping() (time.Duration, error) {
	start := time.Now()
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypePing})
	if err != nil {
		return 0, err
	}
	if resp.Type != wire.TypePong {
		return 0, fmt.Errorf("controller: agent %s: unexpected %s to ping", c.Addr, resp.Type)
	}
	return time.Since(start), nil
}

// Close implements AgentClient.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.link != nil {
		err := c.link.conn.Close()
		c.link = nil
		return err
	}
	return nil
}
