// Package controller implements the central PerfSight controller (§4.3):
// it holds the tenant topology (vNet[tenantID].elem[elementID]), routes
// statistics requests to the agents on the right physical servers, and
// offers the operator the Figure 6 utility routines (GetAttr,
// GetThroughput, GetPktLoss, GetAvgPktSize) that diagnostic applications
// build on.
package controller

import (
	"fmt"
	"net"
	"sync"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/core"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

// AgentClient is the controller's view of one per-server agent.
type AgentClient interface {
	Query(q wire.Query) ([]core.Record, error)
	ListElements() ([]wire.ElementMeta, error)
	Ping() (time.Duration, error)
	Close() error
}

// LocalClient calls an in-process agent directly — used by simulations and
// tests that do not need the TCP path.
type LocalClient struct {
	A *agent.Agent
}

// Query implements AgentClient.
func (c *LocalClient) Query(q wire.Query) ([]core.Record, error) {
	return c.A.Fetch(q.Elements, q.Attrs, q.All)
}

// ListElements implements AgentClient.
func (c *LocalClient) ListElements() ([]wire.ElementMeta, error) {
	ids := c.A.Elements()
	out := make([]wire.ElementMeta, len(ids))
	for i, id := range ids {
		out[i] = wire.ElementMeta{ID: id}
	}
	return out, nil
}

// Ping implements AgentClient.
func (c *LocalClient) Ping() (time.Duration, error) {
	start := time.Now()
	_ = c.A.Machine()
	return time.Since(start), nil
}

// Close implements AgentClient.
func (c *LocalClient) Close() error { return nil }

// TCPClient talks to a remote agent over the wire protocol. Requests are
// serialized on one connection; an established connection that went stale
// is redialed once per request, while a fresh dial failure surfaces
// immediately (the controller's sweep layer owns retry and backoff).
type TCPClient struct {
	Addr    string
	Timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	nextID uint64

	tracer     *telemetry.Tracer
	wireErrors *telemetry.Counter
	reconnects *telemetry.Counter
	agentDur   *telemetry.Histogram
}

// NewTCPClient returns a client for the agent at addr.
func NewTCPClient(addr string) *TCPClient {
	return &TCPClient{Addr: addr, Timeout: 5 * time.Second}
}

// EnableTelemetry instruments the client: every round trip becomes a
// query-lifecycle trace (encode → transport → agent_gather → decode) and
// wire failures/reconnects are counted. tracer is typically shared
// across every client of one controller so trace IDs are unique
// fleet-wide; both may be created with Controller.EnableTelemetry.
func (c *TCPClient) EnableTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) *TCPClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = tracer
	c.wireErrors = reg.Counter("perfsight_controller_wire_errors_total",
		"failed agent round trips (dial, frame, or id mismatch)")
	c.reconnects = reg.Counter("perfsight_controller_reconnects_total",
		"agent connections re-dialed after a stale-connection failure")
	c.agentDur = reg.Histogram("perfsight_controller_agent_gather_duration_ns",
		"agent-reported handling time per query, nanoseconds")
	return c
}

func (c *TCPClient) roundTrip(req *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID

	qt := c.tracer.Begin(c.Addr) // nil tracer → inert trace
	defer qt.End()
	req.TraceID = qt.ID()

	stopEncode := qt.Time(telemetry.StageEncode)
	payload, err := wire.Encode(req)
	stopEncode()
	if err != nil {
		qt.Fail()
		return nil, err
	}

	try := func() (*wire.Message, error) {
		if c.conn == nil {
			conn, err := net.DialTimeout("tcp", c.Addr, c.Timeout)
			if err != nil {
				return nil, fmt.Errorf("controller: dial agent %s: %w", c.Addr, err)
			}
			c.conn = conn
		}
		if c.Timeout > 0 {
			if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
				return nil, fmt.Errorf("controller: set deadline for agent %s: %w", c.Addr, err)
			}
		}
		wireStart := time.Now()
		if err := wire.WriteFrame(c.conn, payload); err != nil {
			return nil, err
		}
		raw, err := wire.ReadFrame(c.conn)
		if err != nil {
			return nil, err
		}
		transport := time.Since(wireStart)
		stopDecode := qt.Time(telemetry.StageDecode)
		resp, err := wire.Decode(raw)
		stopDecode()
		if err != nil {
			return nil, err
		}
		// The synchronous round trip includes the agent's own handling
		// time; subtract what the agent reports so the transport stage
		// is wire time, not gather time.
		if resp.AgentNS > 0 {
			agentTime := time.Duration(resp.AgentNS)
			if agentTime > transport {
				agentTime = transport
			}
			qt.Record(telemetry.StageGather, agentTime)
			transport -= agentTime
			if c.agentDur != nil {
				c.agentDur.Observe(float64(resp.AgentNS))
			}
		}
		qt.Record(telemetry.StageTransport, transport)
		return resp, nil
	}

	// Only a request that started on an established connection earns the
	// one transparent redial: the cached conn may have gone stale since
	// the last request. A failure on a freshly dialed connection (dial
	// refused, or the agent died mid-handshake) is reported immediately —
	// retry policy with backoff belongs to the sweep layer, not here.
	hadConn := c.conn != nil
	resp, err := try()
	if err != nil {
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
		if hadConn {
			if c.reconnects != nil {
				c.reconnects.Inc()
			}
			resp, err = try()
		}
		if err != nil {
			if c.conn != nil {
				c.conn.Close()
				c.conn = nil
			}
			if c.wireErrors != nil {
				c.wireErrors.Inc()
			}
			qt.Fail()
			return nil, err
		}
	}
	if resp.ID != req.ID {
		c.conn.Close()
		c.conn = nil
		if c.wireErrors != nil {
			c.wireErrors.Inc()
		}
		qt.Fail()
		return nil, fmt.Errorf("controller: agent %s: response id %d for request %d", c.Addr, resp.ID, req.ID)
	}
	return resp, nil
}

// Query implements AgentClient.
func (c *TCPClient) Query(q wire.Query) ([]core.Record, error) {
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypeQuery, Query: &q})
	if err != nil {
		return nil, err
	}
	if resp.Type == wire.TypeError {
		return nil, fmt.Errorf("controller: agent %s: %s", c.Addr, resp.Error)
	}
	if resp.Error != "" {
		return resp.Records, fmt.Errorf("controller: agent %s: partial: %s", c.Addr, resp.Error)
	}
	return resp.Records, nil
}

// ListElements implements AgentClient.
func (c *TCPClient) ListElements() ([]wire.ElementMeta, error) {
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypeListElements})
	if err != nil {
		return nil, err
	}
	if resp.Type == wire.TypeError {
		return nil, fmt.Errorf("controller: agent %s: %s", c.Addr, resp.Error)
	}
	return resp.Elements, nil
}

// Ping implements AgentClient.
func (c *TCPClient) Ping() (time.Duration, error) {
	start := time.Now()
	resp, err := c.roundTrip(&wire.Message{Type: wire.TypePing})
	if err != nil {
		return 0, err
	}
	if resp.Type != wire.TypePong {
		return 0, fmt.Errorf("controller: agent %s: unexpected %s to ping", c.Addr, resp.Type)
	}
	return time.Since(start), nil
}

// Close implements AgentClient.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}
