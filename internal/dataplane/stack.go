package dataplane

import (
	"fmt"
	"time"

	"perfsight/internal/core"
)

// Costs holds the per-element processing costs used by a machine's
// datapath. Cycle costs are in CPU cycles; membus factors are memory-bus
// bytes consumed per wire byte (DESIGN.md §5 explains the calibration
// against Fig 3's −439 Mbps per +1 GB/s slope).
type Costs struct {
	DriverCyclesPerPkt  float64 // pNIC interrupt handler
	NAPICyclesPerPkt    float64 // softirq + vswitch lookup
	QEMUCyclesPerPkt    float64 // hypervisor I/O handler
	GuestCyclesPerPkt   float64 // guest driver + NAPI combined, per hop
	DriverMembusFactor  float64 // DMA + sk_buff touch
	NAPIMembusFactor    float64 // TUN socket write copy
	QEMUMembusFactor    float64 // TUN->vNIC copy
	GuestMembusFactor   float64 // vNIC->socket copy
	AppMembusFactor     float64 // socket<->userspace copy (charged by apps)
	CounterCyclesSimple float64 // simple counter update (§7.4: ~3 ns)
	CounterCyclesTimer  float64 // time counter update (§7.4: ~0.29 µs)
}

// DefaultCosts returns costs calibrated for a 2.5 GHz core (see DESIGN.md).
// The total membus factor along pNIC->app is ≈ 18.2 bus bytes per wire
// byte, reproducing the Fig 3 slope.
func DefaultCosts() Costs {
	return Costs{
		DriverCyclesPerPkt: 1200,
		NAPICyclesPerPkt:   2400,
		QEMUCyclesPerPkt:   3600,
		GuestCyclesPerPkt:  1200,
		// Kernel softirq work rides DMA and cache-resident sk_buffs, so it
		// does not contend measurably with streaming memory hogs, and the
		// guest kernel's moves are likewise mostly sk_buff pointer passing.
		// The expensive stages are QEMU's user/kernel crossing (TAP read +
		// write into guest RAM) and the application's socket copy. This
		// asymmetry is what makes memory-bandwidth contention surface at
		// the TUN — the VM fetch path starves first — exactly as Table 1
		// records (and never at the pNIC ring or the guest socket).
		DriverMembusFactor:  0,
		NAPIMembusFactor:    0,
		QEMUMembusFactor:    13.2,
		GuestMembusFactor:   1.0,
		AppMembusFactor:     4.0,
		CounterCyclesSimple: 7.5, // ~3 ns at 2.5 GHz
		CounterCyclesTimer:  725, // ~0.29 µs at 2.5 GHz
	}
}

// StackConfig sizes one machine's virtualization stack.
type StackConfig struct {
	Machine       core.MachineID
	BacklogQueues int // per-CPU backlog queues (RSS); default = #cores
	BacklogCap    int // packets per backlog queue (netdev_max_backlog, 300)
	// NoFairBacklogAdmission disables the saturation-admission model
	// (ablation knob: without it, tick phasing decides whose packets drop).
	NoFairBacklogAdmission bool
	PNICRxBps              float64
	PNICTxBps              float64
	PNICRing               int // receive DMA ring, packets
	PNICTxQueue            int // transmit queue, packets (txqueuelen)
	TUNQueue               int // TUN socket queue, packets
	VNICRing               int // vNIC rings, packets
	GuestBacklog           int // guest backlog, packets
	SocketRxBytes          int64
	SocketTxBytes          int64
	Costs                  Costs
}

// DefaultStackConfig mirrors the paper's testbed: 10 GbE NIC, 300-packet
// backlogs, 500-packet TUN queues.
func DefaultStackConfig(machine core.MachineID, cores int) StackConfig {
	return StackConfig{
		Machine:       machine,
		BacklogQueues: cores,
		BacklogCap:    300,
		PNICRxBps:     10e9,
		PNICTxBps:     10e9,
		PNICRing:      4096,
		PNICTxQueue:   4096,
		TUNQueue:      500,
		VNICRing:      1024,
		GuestBacklog:  300,
		SocketRxBytes: 4 << 20, // Linux autotuned rmem (tcp_rmem max tier)
		SocketTxBytes: 1 << 20,
		Costs:         DefaultCosts(),
	}
}

// VMStack is the per-VM column of Figure 5: TUN and QEMU on the host side,
// and the guest elements inside the VM.
type VMStack struct {
	VM   core.VMID
	Tun  *TUN
	Qemu *HypervisorIO

	VNic       *VNIC
	Driver     *VNICDriver
	GuestQueue *VCPUBacklog
	GuestNapi  *GuestNAPI
	Socket     *GuestSocket
	costs      Costs
}

// Elements returns every element of this VM for agent registration.
func (v *VMStack) Elements() []core.Element {
	return []core.Element{v.Tun, v.Qemu, v.VNic, v.Driver, v.GuestQueue, v.GuestNapi, v.Socket}
}

// GuestRx advances the guest receive path one tick: vCPU backlog -> socket
// first (draining downstream), then vNIC ring -> vCPU backlog. All moves
// are space-limited (backpressure), charged to the VM's vCPU grant and the
// machine memory bus.
func (v *VMStack) GuestRx(vcpu *CycleBudget, bus *MembusBudget) {
	// Guest NAPI: backlog -> socket receive buffer.
	for {
		maxPkts := vcpu.PacketsFor(v.costs.GuestCyclesPerPkt)
		maxBytes := min64(bus.WireBytesFor(v.costs.GuestMembusFactor), v.Socket.RxFree())
		if maxPkts <= 0 || maxBytes <= 0 {
			break
		}
		got := v.GuestQueue.q.Dequeue(maxPkts, maxBytes)
		if len(got) == 0 {
			break
		}
		for _, b := range got {
			vcpu.SpendPackets(b.Packets, v.costs.GuestCyclesPerPkt)
			bus.SpendWireBytes(b.Bytes, v.costs.GuestMembusFactor)
			v.GuestQueue.CountTx(b)
			v.GuestNapi.CountRx(b)
			v.GuestNapi.CountTx(b)
			v.Socket.DeliverRx(b)
		}
	}
	// Guest driver: vNIC receive ring -> backlog (poll mode, space-limited).
	for {
		maxPkts := min(vcpu.PacketsFor(v.costs.GuestCyclesPerPkt), v.GuestQueue.q.FreePackets())
		maxBytes := bus.WireBytesFor(v.costs.GuestMembusFactor)
		if maxPkts <= 0 || maxBytes <= 0 {
			return
		}
		got := v.VNic.DequeueRx(maxPkts, maxBytes)
		if len(got) == 0 {
			return
		}
		for _, b := range got {
			vcpu.SpendPackets(b.Packets, v.costs.GuestCyclesPerPkt)
			bus.SpendWireBytes(b.Bytes, v.costs.GuestMembusFactor)
			v.Driver.CountRx(b)
			v.Driver.CountTx(b)
			v.GuestQueue.CountRx(b)
			v.GuestQueue.q.Enqueue(b) // space checked above
		}
	}
}

// KernelBehind reports whether the guest kernel is failing to keep up
// with its receive ring — the state in which the guest also cannot
// generate ACKs and window updates, so senders keep acting on stale
// windows (see cluster.vmWindow).
func (v *VMStack) KernelBehind() bool {
	return v.VNic.RxRingLen() >= v.VNic.rxRing.CapPackets()*3/4
}

// GuestTx advances the guest transmit path: socket send buffer -> vNIC
// transmit ring, space-limited.
func (v *VMStack) GuestTx(vcpu *CycleBudget, bus *MembusBudget) {
	for {
		maxPkts := min(vcpu.PacketsFor(v.costs.GuestCyclesPerPkt), v.VNic.TxSpace())
		maxBytes := bus.WireBytesFor(v.costs.GuestMembusFactor)
		if maxPkts <= 0 || maxBytes <= 0 {
			return
		}
		got := v.Socket.DequeueTx(maxPkts, maxBytes)
		if len(got) == 0 {
			return
		}
		for _, b := range got {
			vcpu.SpendPackets(b.Packets, v.costs.GuestCyclesPerPkt)
			bus.SpendWireBytes(b.Bytes, v.costs.GuestMembusFactor)
			v.GuestNapi.CountTx(b)
			v.VNic.EnqueueTx(b)
		}
	}
}

// Stack assembles one machine's software dataplane.
type Stack struct {
	Cfg StackConfig

	PNic     *PNIC
	Driver   *PNICDriver
	Backlogs *BacklogSet
	Napi     *NAPI
	VSwitch  *VSwitch
	VMs      map[core.VMID]*VMStack

	tuns   map[core.VMID]*TUN
	tracer *DropTracer
}

// NewStack builds the virtualization-stack elements from cfg.
func NewStack(cfg StackConfig) *Stack {
	m := cfg.Machine
	s := &Stack{
		Cfg: cfg,
		PNic: NewPNIC(eid(m, "pnic"), cfg.PNICRxBps, cfg.PNICTxBps,
			cfg.PNICRing, cfg.PNICTxQueue),
		Driver:   NewPNICDriver(eid(m, "pnic_driver"), cfg.Costs.DriverCyclesPerPkt, cfg.Costs.DriverMembusFactor),
		Backlogs: NewBacklogSet(m, cfg.BacklogQueues, cfg.BacklogCap),

		Napi:    NewNAPI(eid(m, "napi"), cfg.Costs.NAPICyclesPerPkt, cfg.Costs.NAPIMembusFactor),
		VSwitch: NewVSwitch(eid(m, "vswitch")),
		VMs:     make(map[core.VMID]*VMStack),
		tuns:    make(map[core.VMID]*TUN),
	}
	s.Backlogs.NoFairAdmission = cfg.NoFairBacklogAdmission
	return s
}

func eid(m core.MachineID, parts ...string) core.ElementID {
	id := string(m)
	for _, p := range parts {
		id += "/" + p
	}
	return core.ElementID(id)
}

// AddVM instantiates the per-VM stack column with the given vNIC capacity.
func (s *Stack) AddVM(vm core.VMID, vnicBps float64) *VMStack {
	if _, dup := s.VMs[vm]; dup {
		panic(fmt.Sprintf("dataplane: duplicate VM %s on %s", vm, s.Cfg.Machine))
	}
	m := s.Cfg.Machine
	v := &VMStack{
		VM:   vm,
		Tun:  NewTUN(eid(m, string(vm), "tun"), vm, s.Cfg.TUNQueue),
		Qemu: NewHypervisorIO(eid(m, string(vm), "qemu"), vm, s.Cfg.Costs.QEMUCyclesPerPkt, s.Cfg.Costs.QEMUMembusFactor),
		VNic: NewVNIC(eid(m, string(vm), "guest", "vnic"), vm, vnicBps, s.Cfg.VNICRing),
		Driver: NewVNICDriver(eid(m, string(vm), "guest", "vnic_driver"),
			s.Cfg.Costs.GuestCyclesPerPkt, s.Cfg.Costs.GuestMembusFactor),
		GuestQueue: NewVCPUBacklog(eid(m, string(vm), "guest", "backlog"), s.Cfg.GuestBacklog),
		GuestNapi: NewGuestNAPI(eid(m, string(vm), "guest", "napi"),
			s.Cfg.Costs.GuestCyclesPerPkt, s.Cfg.Costs.GuestMembusFactor),
		Socket: NewGuestSocket(eid(m, string(vm), "guest", "socket"), s.Cfg.SocketRxBytes, s.Cfg.SocketTxBytes),
		costs:  s.Cfg.Costs,
	}
	s.VMs[vm] = v
	s.tuns[vm] = v.Tun
	if s.tracer != nil {
		s.AttachTracer(s.tracer)
	}
	return v
}

// RemoveVM detaches a VM (migration). Its in-flight traffic is discarded.
func (s *Stack) RemoveVM(vm core.VMID) {
	delete(s.VMs, vm)
	delete(s.tuns, vm)
}

// Elements returns every virtualization-stack element (per-VM elements are
// reported by each VMStack).
func (s *Stack) Elements() []core.Element {
	out := []core.Element{s.PNic, s.Driver, s.Napi, s.VSwitch}
	for _, q := range s.Backlogs.Queues() {
		out = append(out, q)
	}
	return out
}

// AllElements returns stack plus per-VM elements.
func (s *Stack) AllElements() []core.Element {
	out := s.Elements()
	for _, vm := range s.VMs {
		out = append(out, vm.Elements()...)
	}
	return out
}

// AttachTracer routes every stack element's drops (including per-VM
// elements, and those of VMs added later) into the tracer.
func (s *Stack) AttachTracer(t *DropTracer) {
	s.tracer = t
	s.PNic.AttachTracer(t)
	s.Driver.AttachTracer(t)
	s.Napi.AttachTracer(t)
	s.VSwitch.AttachTracer(t)
	for _, q := range s.Backlogs.Queues() {
		q.AttachTracer(t)
	}
	for _, v := range s.VMs {
		for _, e := range []interface{ AttachTracer(*DropTracer) }{
			&v.Tun.Base, &v.Qemu.Base, &v.VNic.Base, &v.Driver.Base,
			&v.GuestQueue.Base, &v.GuestNapi.Base, &v.Socket.Base,
		} {
			e.AttachTracer(t)
		}
	}
}

// Tracer returns the attached drop tracer, if any.
func (s *Stack) Tracer() *DropTracer { return s.tracer }

// SetCostScales applies this tick's load-dependent cost inflation to the
// wakeup-heavy I/O elements: the softirq path (driver + NAPI) and each
// VM's QEMU I/O handler.
func (s *Stack) SetCostScales(softirqScale, qemuScale float64) {
	s.Driver.CostScale = softirqScale
	s.Napi.CostScale = softirqScale
	for _, v := range s.VMs {
		v.Qemu.CostScale = qemuScale
	}
}

// OfferRx admits wire arrivals at the pNIC.
func (s *Stack) OfferRx(batches []Batch, dt time.Duration) {
	s.PNic.OfferRx(batches, dt)
}

// DrainTx emits wire departures from the pNIC.
func (s *Stack) DrainTx(dt time.Duration) []Batch {
	return s.PNic.DrainTx(dt)
}

// RunHostSoftirq runs the driver and NAPI phases under the softirq cycle
// grant: ring -> backlog, then backlog -> vswitch -> TUN/pNIC.
func (s *Stack) RunHostSoftirq(cpu *CycleBudget, bus *MembusBudget) {
	// NAPI first drains what previous ticks enqueued, then the driver
	// refills from the ring; a second NAPI pass consumes fresh arrivals if
	// budget remains, keeping single-tick latency low at low load.
	s.Napi.Run(s.Backlogs, s.VSwitch, s.PNic, s.tuns, cpu, bus)
	s.Driver.Move(s.PNic, s.Backlogs, cpu, bus)
	s.Napi.Run(s.Backlogs, s.VSwitch, s.PNic, s.tuns, cpu, bus)
}

// RunQemuTx advances one VM's transmit-side hypervisor I/O (vNIC ring ->
// TAP -> pCPU backlog). It runs before the host softirq phase so the NAPI
// routine drains these enqueues within the same tick, as the kernel's
// softirq scheduling does.
func (s *Stack) RunQemuTx(vm core.VMID, cpu *CycleBudget, bus *MembusBudget, dt time.Duration) {
	if v, ok := s.VMs[vm]; ok {
		v.Qemu.MoveTx(v.VNic, s.Backlogs, cpu, bus, dt)
	}
}

// RunQemuRx advances one VM's receive-side hypervisor I/O (TUN -> vNIC),
// after the softirq phase has refilled the TUN.
func (s *Stack) RunQemuRx(vm core.VMID, cpu *CycleBudget, bus *MembusBudget, dt time.Duration) {
	if v, ok := s.VMs[vm]; ok {
		v.Qemu.MoveRx(v.Tun, v.VNic, cpu, bus, dt)
	}
}

// InjectToVM writes a batch directly into a VM's TUN, bypassing the pNIC
// path (used for traffic originating on the same machine's host, e.g. a
// management agent, and by tests).
func (s *Stack) InjectToVM(vm core.VMID, b Batch) {
	if t, ok := s.tuns[vm]; ok {
		b.DstVM = vm
		t.Write(b)
	}
}

// VSwitchCapacityCheck returns the pNIC line rates (used by diagnosis
// preconditions like the Fig 10 NIC-saturation check).
func (s *Stack) VSwitchCapacityCheck() (rxBps, txBps float64) {
	return s.PNic.RxCapBps, s.PNic.TxCapBps
}
