package dataplane

import (
	"strings"
	"testing"
	"time"
)

func TestDropTracerRecordsAndSummarizes(t *testing.T) {
	tr := NewDropTracer(16)
	tr.SetNow(1e9)
	tr.Record("m0/vm0/tun", Batch{Flow: "a", Packets: 5, Bytes: 500})
	tr.SetNow(2e9)
	tr.Record("m0/vm0/tun", Batch{Flow: "b", Packets: 3, Bytes: 300})
	tr.Record("m0/pnic", Batch{Flow: "a", Packets: 1, Bytes: 100})

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events: %d", len(events))
	}
	if events[0].TSNS != 1e9 || events[2].Element != "m0/pnic" {
		t.Fatalf("ordering: %+v", events)
	}

	sums := tr.Summary()
	if len(sums) != 2 || sums[0].Element != "m0/vm0/tun" {
		t.Fatalf("summary: %+v", sums)
	}
	top := sums[0]
	if top.Packets != 8 || top.Events != 2 || top.DistinctFlows != 2 {
		t.Fatalf("top site: %+v", top)
	}
	if top.FirstNS != 1e9 || top.LastNS != 2e9 {
		t.Fatalf("time span: %+v", top)
	}
	if !strings.Contains(tr.String(), "m0/vm0/tun") {
		t.Fatalf("rendering: %s", tr)
	}
}

func TestDropTracerRingRotation(t *testing.T) {
	tr := NewDropTracer(4)
	for i := 0; i < 10; i++ {
		tr.SetNow(int64(i))
		tr.Record("e", Batch{Flow: "f", Packets: 1, Bytes: 1})
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d; want 4", len(events))
	}
	if events[0].TSNS != 6 || events[3].TSNS != 9 {
		t.Fatalf("rotation kept wrong events: %+v", events)
	}
	if tr.TotalEvents() != 10 {
		t.Fatalf("total %d", tr.TotalEvents())
	}
}

func TestDropTracerNilAndEmptySafe(t *testing.T) {
	var tr *DropTracer
	tr.Record("e", Batch{Packets: 1, Bytes: 1}) // nil receiver: no-op
	tr2 := NewDropTracer(4)
	tr2.Record("e", Batch{}) // empty batch ignored
	if tr2.TotalEvents() != 0 {
		t.Fatal("empty batch recorded")
	}
}

func TestStackTracerSeesTUNDrops(t *testing.T) {
	s, _ := buildStack(t)
	tr := NewDropTracer(64)
	s.AttachTracer(tr)
	tr.SetNow(5e6)

	// Overflow the TUN: 1000 packets into a 500-packet queue via the full
	// receive path (2x500-cap backlogs pass ~600 through per sweep).
	for i := 0; i < 4; i++ {
		s.OfferRx(rxBatch(500), time.Millisecond)
		s.RunHostSoftirq(bigCPU(), bigBus())
	}
	if tr.TotalEvents() == 0 {
		t.Fatal("no drops traced")
	}
	found := false
	for _, sum := range tr.Summary() {
		if strings.Contains(sum.Element, "tun") || strings.Contains(sum.Element, "backlog") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexpected drop sites: %+v", tr.Summary())
	}
}

func TestStackTracerCoversLateVMs(t *testing.T) {
	s := NewStack(DefaultStackConfig("m0", 2))
	tr := NewDropTracer(64)
	s.AttachTracer(tr)
	vm := s.AddVM("vm9", 1e9) // added after the tracer
	vm.Tun.Write(Batch{Flow: "f", Packets: 1000, Bytes: 1000 * 1448})
	if tr.TotalEvents() == 0 {
		t.Fatal("late VM's drops not traced")
	}
}
