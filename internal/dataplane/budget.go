package dataplane

// CycleBudget is a per-tick grant of CPU cycles to a datapath consumer
// (the softirq path, one VM's QEMU I/O thread, one VM's vCPU). Stack
// phases draw cycles as they process packets; what remains unspent at the
// end of the tick measures idle headroom.
type CycleBudget struct {
	Cycles float64
	spent  float64
}

// NewCycleBudget returns a budget of the given cycles.
func NewCycleBudget(cycles float64) *CycleBudget {
	return &CycleBudget{Cycles: cycles}
}

// PacketsFor returns how many packets the remaining cycles can process at
// costPerPacket cycles each.
func (b *CycleBudget) PacketsFor(costPerPacket float64) int {
	if b == nil {
		return int(^uint(0) >> 1)
	}
	if costPerPacket <= 0 {
		return int(^uint(0) >> 1)
	}
	n := (b.Cycles - b.spent) / costPerPacket
	if n <= 0 {
		return 0
	}
	return int(n)
}

// BytesFor returns how many bytes the remaining cycles can process at
// costPerByte cycles each.
func (b *CycleBudget) BytesFor(costPerByte float64) int64 {
	if b == nil || costPerByte <= 0 {
		return int64(^uint64(0) >> 1)
	}
	n := (b.Cycles - b.spent) / costPerByte
	if n <= 0 {
		return 0
	}
	return int64(n)
}

// SpendPackets charges n packets at costPerPacket cycles each.
func (b *CycleBudget) SpendPackets(n int, costPerPacket float64) {
	if b == nil || n <= 0 {
		return
	}
	b.spent += float64(n) * costPerPacket
}

// SpendBytes charges n bytes at costPerByte cycles each.
func (b *CycleBudget) SpendBytes(n int64, costPerByte float64) {
	if b == nil || n <= 0 {
		return
	}
	b.spent += float64(n) * costPerByte
}

// SpendCycles charges raw cycles.
func (b *CycleBudget) SpendCycles(c float64) {
	if b == nil || c <= 0 {
		return
	}
	b.spent += c
}

// Spent returns the cycles consumed so far this tick.
func (b *CycleBudget) Spent() float64 {
	if b == nil {
		return 0
	}
	return b.spent
}

// Remaining returns the unspent cycles.
func (b *CycleBudget) Remaining() float64 {
	if b == nil {
		return 0
	}
	r := b.Cycles - b.spent
	if r < 0 {
		return 0
	}
	return r
}

// Exhausted reports whether no useful work can still be charged.
func (b *CycleBudget) Exhausted() bool {
	return b != nil && b.spent >= b.Cycles
}

// MembusBudget is the per-tick grant of memory-bus bytes available to the
// machine's datapath copies (DMA, QEMU copies, guest copies). Memory-hog
// workloads are served before this budget is computed — the streaming-
// priority calibration of DESIGN.md §5 — so bus contention manifests
// exactly as in the paper: the datapath silently slows and packets back up
// into the TUN queues.
type MembusBudget struct {
	Bytes int64
	spent int64
	// parent, when set, is a shared pool this budget also draws from: the
	// consumer is limited by both its own cap (fair-share isolation) and
	// the pool (physical capacity), making the allocation work-conserving —
	// slack left by one consumer is usable by the next up to its cap.
	parent *MembusBudget
}

// NewMembusBudget returns a budget of the given bus bytes.
func NewMembusBudget(bytes int64) *MembusBudget {
	return &MembusBudget{Bytes: bytes}
}

// Child returns a capped budget drawing from m as the shared pool.
func (m *MembusBudget) Child(capBytes int64) *MembusBudget {
	return &MembusBudget{Bytes: capBytes, parent: m}
}

// WireBytesFor returns how many wire bytes can be copied given factor bus
// bytes consumed per wire byte.
func (m *MembusBudget) WireBytesFor(factor float64) int64 {
	if m == nil || factor <= 0 {
		return int64(^uint64(0) >> 1)
	}
	avail := m.Bytes - m.spent
	if m.parent != nil {
		if p := m.parent.Bytes - m.parent.spent; p < avail {
			avail = p
		}
	}
	n := float64(avail) / factor
	if n <= 0 {
		return 0
	}
	return int64(n)
}

// SpendWireBytes charges n wire bytes at the given bus-bytes factor.
func (m *MembusBudget) SpendWireBytes(n int64, factor float64) {
	if m == nil || n <= 0 {
		return
	}
	c := int64(float64(n) * factor)
	m.spent += c
	if m.parent != nil {
		m.parent.spent += c
	}
}

// Spent returns bus bytes consumed this tick.
func (m *MembusBudget) Spent() int64 {
	if m == nil {
		return 0
	}
	return m.spent
}

// Remaining returns unspent bus bytes.
func (m *MembusBudget) Remaining() int64 {
	if m == nil {
		return 0
	}
	r := m.Bytes - m.spent
	if r < 0 {
		return 0
	}
	return r
}
