// Package dataplane models the software dataplane of one physical server as
// the pipeline of elements in Figure 5 of the paper: pNIC, pNIC driver,
// per-CPU backlog queues, the NAPI routine, the virtual switch, per-VM TUN
// socket queues, the hypervisor I/O handler (QEMU), and the guest-side
// elements (vNIC, vNIC driver, vCPU backlog, guest NAPI, guest socket).
//
// Traffic is represented as fluid batches of packets that flow through
// bounded buffers; every buffer boundary where the Linux/QEMU datapath can
// drop packets is a drop-accounting point here, so the counters PerfSight
// gathers have the same locations and semantics as on the paper's testbed.
package dataplane

import (
	"fmt"

	"perfsight/internal/core"
)

// FlowID identifies one end-to-end traffic flow (a TCP connection, a UDP
// stream, or an aggregate the virtual switch matches on).
type FlowID string

// Feedback receives delivery and loss notifications for a flow's batches.
// Stream transports use it to drive retransmission and congestion control;
// open-loop sources use it to adapt their offered rate (AIMD).
//
// Implementations must tolerate being called from the machine tick loop.
type Feedback interface {
	// Delivered reports packets that reached the flow's destination socket.
	Delivered(packets int, bytes int64)
	// Dropped reports packets discarded at the given element.
	Dropped(packets int, bytes int64, where core.ElementID)
}

// Batch is a fluid chunk of one flow's traffic: some number of packets
// totalling some number of bytes. Batches are value types; splitting a
// batch conserves packets and bytes exactly.
type Batch struct {
	Flow    FlowID
	Packets int
	Bytes   int64
	// FB, if non-nil, is notified when the batch is delivered or dropped.
	FB Feedback
	// DstVM is the VM the batch is addressed to on its current machine, or
	// "" if it leaves via the pNIC. The virtual switch routes on it.
	DstVM core.VMID
	// Egress marks traffic travelling VM-to-wire (set when a VM transmits).
	Egress bool
}

// AvgSize returns the average packet size of the batch, in bytes.
func (b Batch) AvgSize() int {
	if b.Packets == 0 {
		return 0
	}
	return int(b.Bytes / int64(b.Packets))
}

// Empty reports whether the batch carries no traffic.
func (b Batch) Empty() bool { return b.Packets <= 0 && b.Bytes <= 0 }

// SplitPackets divides the batch into a head of at most n packets and the
// remaining tail. Bytes are apportioned proportionally, conserving totals.
func (b Batch) SplitPackets(n int) (head, tail Batch) {
	if n >= b.Packets {
		return b, Batch{}
	}
	if n <= 0 {
		return Batch{}, b
	}
	head = b
	tail = b
	head.Packets = n
	head.Bytes = b.Bytes * int64(n) / int64(b.Packets)
	tail.Packets = b.Packets - n
	tail.Bytes = b.Bytes - head.Bytes
	return head, tail
}

// SplitBytes divides the batch into a head of at most maxBytes and the
// remaining tail, keeping packet counts proportional. A non-empty head
// always carries at least one packet so progress is guaranteed.
func (b Batch) SplitBytes(maxBytes int64) (head, tail Batch) {
	if maxBytes >= b.Bytes {
		return b, Batch{}
	}
	if maxBytes <= 0 || b.Packets == 0 {
		return Batch{}, b
	}
	n := int(int64(b.Packets) * maxBytes / b.Bytes)
	if n == 0 {
		n = 1
	}
	return b.SplitPackets(n)
}

func (b Batch) String() string {
	return fmt.Sprintf("{%s %dpkt %dB dst=%s}", b.Flow, b.Packets, b.Bytes, b.DstVM)
}

// NotifyDropped credits the batch's drop to where via its feedback hook.
func (b Batch) NotifyDropped(where core.ElementID) {
	if b.FB != nil && !b.Empty() {
		b.FB.Dropped(b.Packets, b.Bytes, where)
	}
}

// NotifyDelivered reports the batch's arrival via its feedback hook.
func (b Batch) NotifyDelivered() {
	if b.FB != nil && !b.Empty() {
		b.FB.Delivered(b.Packets, b.Bytes)
	}
}

// SumPackets returns the total packets across batches.
func SumPackets(batches []Batch) int {
	n := 0
	for _, b := range batches {
		n += b.Packets
	}
	return n
}

// SumBytes returns the total bytes across batches.
func SumBytes(batches []Batch) int64 {
	var n int64
	for _, b := range batches {
		n += b.Bytes
	}
	return n
}
