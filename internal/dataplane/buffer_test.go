package dataplane

import (
	"testing"
	"testing/quick"
)

func TestBatchSplitPacketsConserves(t *testing.T) {
	b := Batch{Flow: "f", Packets: 10, Bytes: 1000}
	head, tail := b.SplitPackets(3)
	if head.Packets != 3 || tail.Packets != 7 {
		t.Fatalf("split packets %d/%d", head.Packets, tail.Packets)
	}
	if head.Bytes+tail.Bytes != 1000 {
		t.Fatalf("bytes not conserved: %d + %d", head.Bytes, tail.Bytes)
	}
	if head.Flow != "f" || tail.Flow != "f" {
		t.Fatal("flow identity lost")
	}
}

func TestBatchSplitEdges(t *testing.T) {
	b := Batch{Packets: 5, Bytes: 500}
	head, tail := b.SplitPackets(10)
	if head.Packets != 5 || !tail.Empty() {
		t.Fatal("oversized split should return whole batch")
	}
	head, tail = b.SplitPackets(0)
	if !head.Empty() || tail.Packets != 5 {
		t.Fatal("zero split should return empty head")
	}
	head, tail = b.SplitBytes(5000)
	if head.Bytes != 500 || !tail.Empty() {
		t.Fatal("oversized byte split")
	}
	head, _ = b.SplitBytes(1)
	if head.Packets != 1 {
		t.Fatalf("non-empty byte split must carry at least one packet, got %d", head.Packets)
	}
}

// TestBatchSplitProperty: any split conserves packets and bytes exactly.
func TestBatchSplitProperty(t *testing.T) {
	f := func(pkts uint8, avg uint8, n uint8) bool {
		if pkts == 0 {
			return true
		}
		b := Batch{Packets: int(pkts), Bytes: int64(pkts) * int64(avg)}
		h, tl := b.SplitPackets(int(n))
		return h.Packets+tl.Packets == b.Packets && h.Bytes+tl.Bytes == b.Bytes &&
			h.Packets >= 0 && tl.Packets >= 0 && h.Bytes >= 0 && tl.Bytes >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferFIFO(t *testing.T) {
	b := NewBuffer(0, 0)
	b.Enqueue(Batch{Flow: "a", Packets: 1, Bytes: 10})
	b.Enqueue(Batch{Flow: "b", Packets: 1, Bytes: 20})
	got := b.Dequeue(1, -1)
	if len(got) != 1 || got[0].Flow != "a" {
		t.Fatalf("dequeue order: %v", got)
	}
	got = b.Dequeue(1, -1)
	if len(got) != 1 || got[0].Flow != "b" {
		t.Fatalf("dequeue order: %v", got)
	}
}

func TestBufferPacketCap(t *testing.T) {
	b := NewBuffer(3, 0)
	over := b.Enqueue(Batch{Flow: "f", Packets: 5, Bytes: 500})
	if b.Len() != 3 {
		t.Fatalf("len = %d; want 3", b.Len())
	}
	if over.Packets != 2 {
		t.Fatalf("overflow = %d packets; want 2", over.Packets)
	}
	if b.Bytes()+over.Bytes != 500 {
		t.Fatal("bytes not conserved across overflow")
	}
}

func TestBufferByteCap(t *testing.T) {
	b := NewBuffer(0, 100)
	over := b.Enqueue(Batch{Flow: "f", Packets: 10, Bytes: 250})
	if b.Bytes() > 100 {
		t.Fatalf("bytes = %d beyond cap", b.Bytes())
	}
	if b.Bytes()+over.Bytes != 250 {
		t.Fatal("bytes not conserved")
	}
	if free := b.FreeBytes(); free < 0 {
		t.Fatalf("free bytes negative: %d", free)
	}
}

func TestBufferDequeueBounds(t *testing.T) {
	b := NewBuffer(0, 0)
	b.Enqueue(Batch{Flow: "f", Packets: 10, Bytes: 1000})
	got := b.Dequeue(4, -1)
	if SumPackets(got) != 4 {
		t.Fatalf("packet-bounded dequeue got %d", SumPackets(got))
	}
	got = b.Dequeue(-1, 100)
	if SumBytes(got) > 100+100 { // one packet of slack for progress
		t.Fatalf("byte-bounded dequeue got %d bytes", SumBytes(got))
	}
	got = b.Dequeue(0, -1)
	if got != nil {
		t.Fatal("zero-packet dequeue returned data")
	}
}

func TestBufferPeekAndDrain(t *testing.T) {
	b := NewBuffer(0, 0)
	if _, ok := b.Peek(); ok {
		t.Fatal("peek on empty buffer")
	}
	b.Enqueue(Batch{Flow: "x", Packets: 2, Bytes: 20})
	head, ok := b.Peek()
	if !ok || head.Flow != "x" || b.Len() != 2 {
		t.Fatal("peek must not consume")
	}
	all := b.DrainAll()
	if SumPackets(all) != 2 || !b.Empty() {
		t.Fatal("drain incomplete")
	}
}

func TestBufferCoalescesSameFlow(t *testing.T) {
	b := NewBuffer(0, 0)
	for i := 0; i < 100; i++ {
		b.Enqueue(Batch{Flow: "same", Packets: 1, Bytes: 10})
	}
	// Internal queue should have coalesced into one entry; verify via a
	// single dequeue returning everything under one batch.
	got := b.Dequeue(-1, -1)
	if len(got) != 1 || got[0].Packets != 100 {
		t.Fatalf("coalescing failed: %d batches", len(got))
	}
}

func TestBufferNoCoalesceAcrossFlows(t *testing.T) {
	b := NewBuffer(0, 0)
	b.Enqueue(Batch{Flow: "a", Packets: 1, Bytes: 10})
	b.Enqueue(Batch{Flow: "b", Packets: 1, Bytes: 10})
	b.Enqueue(Batch{Flow: "a", Packets: 1, Bytes: 10})
	got := b.Dequeue(-1, -1)
	if len(got) != 3 {
		t.Fatalf("cross-flow coalescing: %d batches", len(got))
	}
}

// TestBufferConservationProperty: random op sequences conserve
// enqueued = dequeued + dropped + resident, in packets and bytes.
func TestBufferConservationProperty(t *testing.T) {
	type op struct {
		Enq     bool
		Pkts    uint8
		AvgSize uint8
		DeqPkts uint8
	}
	f := func(capPkts uint8, ops []op) bool {
		b := NewBuffer(int(capPkts), 0)
		var inP, outP, dropP int
		var inB, outB, dropB int64
		for _, o := range ops {
			if o.Enq {
				batch := Batch{Flow: "f", Packets: int(o.Pkts), Bytes: int64(o.Pkts) * int64(o.AvgSize)}
				if batch.Empty() {
					continue
				}
				inP += batch.Packets
				inB += batch.Bytes
				over := b.Enqueue(batch)
				dropP += over.Packets
				dropB += over.Bytes
			} else {
				for _, g := range b.Dequeue(int(o.DeqPkts), -1) {
					outP += g.Packets
					outB += g.Bytes
				}
			}
		}
		return inP == outP+dropP+b.Len() && inB == outB+dropB+b.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedbackNotifications(t *testing.T) {
	fb := &recordingFB{}
	b := Batch{Flow: "f", Packets: 2, Bytes: 20, FB: fb}
	b.NotifyDelivered()
	b.NotifyDropped("m0/tun")
	if fb.delivered != 20 || fb.dropped != 20 || fb.where != "m0/tun" {
		t.Fatalf("feedback: %+v", fb)
	}
	empty := Batch{FB: fb}
	empty.NotifyDelivered() // no-op for empty batches
	if fb.delivered != 20 {
		t.Fatal("empty batch notified")
	}
}
