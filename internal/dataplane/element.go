package dataplane

import (
	"perfsight/internal/core"
	"perfsight/internal/stats"
)

// Base provides the identity and counter block shared by all dataplane
// elements. Concrete elements embed it and add their buffers and logic.
type Base struct {
	id   core.ElementID
	kind core.ElementKind

	// ES holds the rx/tx/drop counters of §4.1.
	ES stats.ElementStats

	// CapacityBps is the element's line rate where meaningful (0 = none).
	CapacityBps float64

	// buf, if non-nil, is reported through the queue_len/queue_cap gauges.
	buf *Buffer
	// tracer, if non-nil, receives a DropEvent for every CountDrop.
	tracer *DropTracer
}

// NewBase returns a Base for the given identity.
func NewBase(id core.ElementID, kind core.ElementKind) Base {
	return Base{id: id, kind: kind}
}

// ID implements core.Element.
func (b *Base) ID() core.ElementID { return b.id }

// Kind implements core.Element.
func (b *Base) Kind() core.ElementKind { return b.kind }

// AttachBuffer associates a buffer whose occupancy the snapshot reports.
func (b *Base) AttachBuffer(buf *Buffer) { b.buf = buf }

// AttachTracer routes this element's drops into a DropTracer.
func (b *Base) AttachTracer(t *DropTracer) { b.tracer = t }

// Snapshot implements core.Element.
func (b *Base) Snapshot(ts int64) core.Record {
	rec := core.Record{Timestamp: ts, Element: b.id}
	rec.Attrs = append(rec.Attrs, core.Attr{ID: core.AttrKind, Value: float64(b.kind)})
	rec.Attrs = append(rec.Attrs, b.ES.Attrs()...)
	if b.CapacityBps > 0 {
		rec.Attrs = append(rec.Attrs, core.Attr{ID: core.AttrCapacityBps, Value: b.CapacityBps})
	}
	if b.buf != nil {
		rec.Attrs = append(rec.Attrs,
			core.Attr{ID: core.AttrQueueLen, Value: float64(b.buf.Len())},
			core.Attr{ID: core.AttrQueueCap, Value: float64(b.buf.CapPackets())},
		)
	}
	return rec
}

// CountRx credits received traffic to the element.
func (b *Base) CountRx(batches ...Batch) {
	for _, x := range batches {
		b.ES.Rx.Add(x.Packets, x.Bytes)
	}
}

// CountTx credits transmitted traffic to the element.
func (b *Base) CountTx(batches ...Batch) {
	for _, x := range batches {
		b.ES.Tx.Add(x.Packets, x.Bytes)
	}
}

// CountDrop records a drop at this element and notifies the flow.
func (b *Base) CountDrop(batch Batch) {
	if batch.Empty() {
		return
	}
	b.ES.Drop.Add(batch.Packets, batch.Bytes)
	if b.tracer != nil {
		b.tracer.Record(string(b.id), batch)
	}
	batch.NotifyDropped(b.id)
}
