package dataplane

import (
	"time"

	"perfsight/internal/core"
	"perfsight/internal/sim"
)

// HypervisorIO models the QEMU I/O handler for one VM: on receive it reads
// packets from the TUN socket and writes them into the vNIC ring; on
// transmit, the vNIC interrupt causes it to call the TAP transmit function,
// which enqueues onto the pCPU backlog (§6). Each byte moved is a
// user/kernel copy, so this element's progress is gated by its CPU grant
// *and* the machine's memory-bus budget — starve either and the TUN backs
// up, which is precisely how CPU and memory-bandwidth contention acquire
// their shared TUN-drop symptom.
type HypervisorIO struct {
	Base
	VM core.VMID

	// CyclesPerPacket is QEMU's per-packet handling cost.
	CyclesPerPacket float64
	// MembusFactor is bus bytes per wire byte for the QEMU copy.
	MembusFactor float64
	// CostScale inflates the per-packet cost under host CPU load: QEMU's
	// I/O thread sleeps and wakes per batch, so scheduling latency and
	// cache pollution raise its effective per-packet cost.
	CostScale float64
}

// NewHypervisorIO builds the QEMU I/O element for a VM.
func NewHypervisorIO(id core.ElementID, vm core.VMID, cyclesPerPacket, membusFactor float64) *HypervisorIO {
	return &HypervisorIO{
		Base:            NewBase(id, core.KindHypervisorIO),
		VM:              vm,
		CyclesPerPacket: cyclesPerPacket,
		MembusFactor:    membusFactor,
	}
}

// MoveRx transfers TUN -> vNIC receive ring, limited by the QEMU cycle
// grant, the memory bus, the vNIC line rate, and ring space (backpressure:
// what does not fit stays in the TUN, which then overflows and drops).
func (h *HypervisorIO) MoveRx(tun *TUN, vnic *VNIC, cpu *CycleBudget, bus *MembusBudget, dt time.Duration) {
	cost := h.CyclesPerPacket * scaleOr1(h.CostScale)
	budgetBytes := sim.BytesIn(vnic.RxCapBps, dt)
	for budgetBytes > 0 {
		maxPkts := min(cpu.PacketsFor(cost), vnic.RxSpace())
		maxBytes := min64(bus.WireBytesFor(h.MembusFactor), budgetBytes)
		if maxPkts <= 0 || maxBytes <= 0 {
			return
		}
		got := tun.Read(maxPkts, maxBytes)
		if len(got) == 0 {
			return
		}
		for _, b := range got {
			cpu.SpendPackets(b.Packets, cost)
			bus.SpendWireBytes(b.Bytes, h.MembusFactor)
			budgetBytes -= b.Bytes
			h.CountRx(b)
			h.CountTx(b)
			vnic.EnqueueRx(b)
		}
	}
}

// MoveTx transfers vNIC transmit ring -> pCPU backlog (the TAP transmit
// path), limited by the QEMU cycle grant, the memory bus and the vNIC line
// rate. Backlog overflow drops are charged to the backlog element.
func (h *HypervisorIO) MoveTx(vnic *VNIC, backlogs *BacklogSet, cpu *CycleBudget, bus *MembusBudget, dt time.Duration) {
	cost := h.CyclesPerPacket * scaleOr1(h.CostScale)
	budgetBytes := sim.BytesIn(vnic.TxCapBps, dt)
	for budgetBytes > 0 {
		maxPkts := cpu.PacketsFor(cost)
		maxBytes := min64(bus.WireBytesFor(h.MembusFactor), budgetBytes)
		if maxPkts <= 0 || maxBytes <= 0 {
			return
		}
		got := vnic.DequeueTx(maxPkts, maxBytes)
		if len(got) == 0 {
			return
		}
		for _, b := range got {
			cpu.SpendPackets(b.Packets, cost)
			bus.SpendWireBytes(b.Bytes, h.MembusFactor)
			budgetBytes -= b.Bytes
			h.CountRx(b)
			h.CountTx(b)
			b.Egress = true
			backlogs.Enqueue(b)
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
