package dataplane

import (
	"perfsight/internal/core"
)

// NAPI models the host softirq routine that dequeues per-CPU backlog
// queues and passes each packet to the virtual switch frame handler (a
// function call, so no buffer of its own). Output to a TUN is a
// non-blocking socket write — overflow drops at the TUN — while output to
// the pNIC requires transmit-queue space: when the wire is the bottleneck
// the NAPI routine stops dequeuing, the backlog fills, and subsequent
// enqueues drop there (the Fig 8 outgoing-bandwidth signature).
type NAPI struct {
	Base
	// CyclesPerPacket is the softirq + switch-lookup cost per packet.
	CyclesPerPacket float64
	// MembusFactor is bus bytes per wire byte for the TUN socket write.
	MembusFactor float64
	// CostScale inflates the per-packet cost under host CPU load.
	CostScale float64
}

// NewNAPI builds the host NAPI element.
func NewNAPI(id core.ElementID, cyclesPerPacket, membusFactor float64) *NAPI {
	return &NAPI{
		Base:            NewBase(id, core.KindNAPIRoutine),
		CyclesPerPacket: cyclesPerPacket,
		MembusFactor:    membusFactor,
	}
}

// Run processes the backlog queues round-robin until the cycle budget is
// exhausted or every queue is empty/head-of-line blocked.
func (n *NAPI) Run(backlogs *BacklogSet, vsw *VSwitch, nic *PNIC, tuns map[core.VMID]*TUN, cpu *CycleBudget, bus *MembusBudget) {
	cost := n.CyclesPerPacket * scaleOr1(n.CostScale)
	queues := backlogs.Queues()
	blocked := make([]bool, len(queues))
	for {
		progress := false
		for qi, q := range queues {
			if blocked[qi] || q.q.Empty() {
				continue
			}
			head, ok := q.q.Peek()
			if !ok {
				continue
			}
			budgetPkts := cpu.PacketsFor(cost)
			if budgetPkts == 0 {
				return
			}
			rule := vsw.Lookup(head.Flow)
			switch {
			case rule == nil || rule.Action == ActionDrop:
				got := q.q.Dequeue(min(budgetPkts, head.Packets), -1)
				for _, b := range got {
					cpu.SpendPackets(b.Packets, cost)
					q.CountTx(b)
					n.CountRx(b)
					vsw.DropUnmatched(b)
				}
				progress = len(got) > 0

			case rule.Action == ActionToPNIC:
				space := nic.TxSpace()
				if space == 0 {
					blocked[qi] = true // HOL block: wire is the bottleneck
					continue
				}
				got := q.q.Dequeue(min(min(budgetPkts, space), head.Packets), -1)
				for _, b := range got {
					cpu.SpendPackets(b.Packets, cost)
					q.CountTx(b)
					n.CountRx(b)
					n.CountTx(b)
					vsw.Count(rule, b)
					nic.EnqueueTx(b)
				}
				progress = len(got) > 0

			case rule.Action == ActionToVM:
				tun, ok := tuns[rule.VM]
				if !ok {
					got := q.q.Dequeue(min(budgetPkts, head.Packets), -1)
					for _, b := range got {
						cpu.SpendPackets(b.Packets, cost)
						q.CountTx(b)
						vsw.DropUnmatched(b)
					}
					progress = len(got) > 0
					continue
				}
				// Socket write to the TUN costs a copy on the memory bus.
				maxBytes := bus.WireBytesFor(n.MembusFactor)
				if maxBytes == 0 {
					return
				}
				got := q.q.Dequeue(min(budgetPkts, head.Packets), maxBytes)
				for _, b := range got {
					cpu.SpendPackets(b.Packets, cost)
					bus.SpendWireBytes(b.Bytes, n.MembusFactor)
					q.CountTx(b)
					n.CountRx(b)
					n.CountTx(b)
					vsw.Count(rule, b)
					b.DstVM = rule.VM
					tun.Write(b)
				}
				progress = len(got) > 0
			}
		}
		if !progress {
			return
		}
	}
}
