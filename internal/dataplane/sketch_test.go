package dataplane

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Properties of the count-min planes -------------------------------

// TestSketchNeverUndercounts: the defining count-min property. For any
// workload, Estimate(flow) ≥ the true count, per plane — the sketch may
// overcount on collisions but can never lose traffic.
func TestSketchNeverUndercounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fs := NewFlowSketch(SketchConfig{Width: 256, Depth: 3, TopK: 8, Stripes: 2})
	type truth struct{ pkts, byts uint64 }
	want := make(map[FlowID]truth)
	for i := 0; i < 20000; i++ {
		f := FlowID("flow-" + strconv.Itoa(rng.Intn(3000)))
		p := uint64(rng.Intn(16) + 1)
		b := p * uint64(rng.Intn(1500)+64)
		fs.Update(f, p, b)
		tr := want[f]
		tr.pkts += p
		tr.byts += b
		want[f] = tr
	}
	for f, tr := range want {
		gotP, gotB := fs.Estimate(f)
		if gotP < tr.pkts {
			t.Fatalf("flow %s: packet estimate %d < true %d", f, gotP, tr.pkts)
		}
		if gotB < tr.byts {
			t.Fatalf("flow %s: byte estimate %d < true %d", f, gotB, tr.byts)
		}
	}
	totP, totB := fs.Totals()
	var wantP, wantB uint64
	for _, tr := range want {
		wantP += tr.pkts
		wantB += tr.byts
	}
	if totP != wantP || totB != wantB {
		t.Fatalf("Totals = %d pkts / %d bytes; want %d / %d", totP, totB, wantP, wantB)
	}
}

// TestSketchErrorBound: the classic ε·N guarantee. With ε = e/width and
// δ = e^−depth, the fraction of flows whose overcount exceeds ε·N must
// not exceed δ (conservative update does strictly better; the assertion
// allows 2δ of slack so an unlucky seed cannot flake the build).
func TestSketchErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := SketchConfig{Width: 1024, Depth: 4, TopK: 16, Stripes: 4}
	fs := NewFlowSketch(cfg)
	want := make(map[FlowID]uint64)
	const flows = 40000
	for i := 0; i < flows; i++ {
		// Zipf-ish mix: a few heavy flows, a long tail of small ones.
		f := FlowID("f" + strconv.Itoa(i))
		p := uint64(1)
		if i%1000 == 0 {
			p = uint64(rng.Intn(5000) + 1000)
		}
		fs.Update(f, p, p*100)
		want[f] += p
	}
	totP, _ := fs.Totals()
	bound := uint64(cfg.Epsilon() * float64(totP))
	var over int
	for f, tr := range want {
		got, _ := fs.Estimate(f)
		if got-tr > bound {
			over++
		}
	}
	maxOver := int(2 * cfg.DeltaProb() * float64(flows))
	if over > maxOver {
		t.Fatalf("%d/%d flows overcount past ε·N = %d (allowed %d at 2δ)",
			over, flows, bound, maxOver)
	}
	t.Logf("ε·N = %d pkts; %d/%d flows past the bound (2δ allowance %d)",
		bound, over, flows, maxOver)
}

// --- Heavy-hitter exactness -------------------------------------------

// TestSketchTopKExact: flows admitted to the heavy-hitter table on their
// first packet carry error 0, survive a large tail, and decode from the
// snapshot with their exact counts.
func TestSketchTopKExact(t *testing.T) {
	fs := NewFlowSketch(SketchConfig{Width: 4096, Depth: 4, TopK: 64, Stripes: 8})
	const heavies = 32
	want := make(map[string]uint64, heavies)
	for i := 0; i < heavies; i++ {
		f := FlowID("heavy-" + strconv.Itoa(i))
		fs.Update(f, 1_000_000, 1_500_000_000)
		want[string(f)] = 1_000_000
	}
	// A tail two orders of magnitude larger in cardinality.
	for i := 0; i < 100000; i++ {
		fs.Update(FlowID("tail-"+strconv.Itoa(i)), uint64(i%3+1), 1500)
	}
	// Tracked flows keep counting exactly after the tail churned the sketch.
	for i := 0; i < heavies; i++ {
		f := FlowID("heavy-" + strconv.Itoa(i))
		fs.Update(f, 5, 7500)
		want[string(f)] += 5
	}

	sum, err := DecodeSketch(fs.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]TopFlow)
	for _, tf := range sum.Top {
		got[tf.Flow] = tf
	}
	for f, pkts := range want {
		tf, ok := got[f]
		if !ok {
			t.Fatalf("heavy flow %s missing from decoded top-k", f)
		}
		if !tf.Exact() {
			t.Fatalf("heavy flow %s not exact: err %d pkts / %d bytes", f, tf.ErrPkts, tf.ErrBytes)
		}
		if tf.Pkts != pkts {
			t.Fatalf("heavy flow %s: top-k says %d pkts; want %d", f, tf.Pkts, pkts)
		}
	}
	// The snapshot is sorted heaviest-first.
	for i := 1; i < len(sum.Top); i++ {
		if sum.Top[i].Pkts > sum.Top[i-1].Pkts {
			t.Fatalf("top-k not sorted: [%d]=%d > [%d]=%d", i, sum.Top[i].Pkts, i-1, sum.Top[i-1].Pkts)
		}
	}
}

// TestSketchSmallFlowSetAllExact: with fewer flows than the table holds,
// sketch mode is lossless — every flow appears with its exact counts.
func TestSketchSmallFlowSetAllExact(t *testing.T) {
	fs := NewFlowSketch(SketchConfig{Width: 64, Depth: 2, TopK: 32, Stripes: 2})
	rng := rand.New(rand.NewSource(3))
	want := make(map[string][2]uint64)
	for i := 0; i < 20; i++ {
		f := "flow" + strconv.Itoa(i)
		for j := 0; j < 5; j++ {
			p := uint64(rng.Intn(100) + 1)
			b := p * 800
			fs.Update(FlowID(f), p, b)
			w := want[f]
			want[f] = [2]uint64{w[0] + p, w[1] + b}
		}
	}
	sum, err := DecodeSketch(fs.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Top) != len(want) {
		t.Fatalf("decoded %d top flows; want all %d", len(sum.Top), len(want))
	}
	for _, tf := range sum.Top {
		w, ok := want[tf.Flow]
		if !ok || !tf.Exact() || tf.Pkts != w[0] || tf.Bytes != w[1] {
			t.Fatalf("flow %s: got %d/%d exact=%v; want %d/%d exact", tf.Flow, tf.Pkts, tf.Bytes, tf.Exact(), w[0], w[1])
		}
	}
}

// --- Encode / decode --------------------------------------------------

// TestSketchEncodeDecodeRoundTrip checks the blob against the live
// sketch, with and without the count-min planes.
func TestSketchEncodeDecodeRoundTrip(t *testing.T) {
	for _, planes := range []bool{false, true} {
		cfg := SketchConfig{Width: 128, Depth: 3, TopK: 8, Stripes: 2, WirePlanes: planes}
		fs := NewFlowSketch(cfg)
		for i := 0; i < 500; i++ {
			fs.Update(FlowID("f"+strconv.Itoa(i%40)), uint64(i%7+1), uint64(i%7+1)*500)
		}
		blob := fs.Encode()
		if ep, ok := SketchEpoch(blob); !ok || ep != fs.Epoch() {
			t.Fatalf("planes=%v: SketchEpoch = %d,%v; want %d,true", planes, ep, ok, fs.Epoch())
		}
		sum, err := DecodeSketch(blob)
		if err != nil {
			t.Fatalf("planes=%v: %v", planes, err)
		}
		if sum.Width != cfg.Width || sum.Depth != cfg.Depth || sum.Stripes != cfg.Stripes || sum.TopKCap != cfg.TopK {
			t.Fatalf("planes=%v: geometry %d/%d/%d/%d does not match config", planes, sum.Width, sum.Depth, sum.Stripes, sum.TopKCap)
		}
		totP, totB := fs.Totals()
		if sum.TotalPkts != totP || sum.TotalBytes != totB {
			t.Fatalf("planes=%v: totals %d/%d; want %d/%d", planes, sum.TotalPkts, sum.TotalBytes, totP, totB)
		}
		if sum.Epoch != fs.Epoch() {
			t.Fatalf("planes=%v: epoch %d; want %d", planes, sum.Epoch, fs.Epoch())
		}
		if sum.HasPlanes() != planes {
			t.Fatalf("HasPlanes = %v; want %v", sum.HasPlanes(), planes)
		}
		if len(sum.Top) == 0 || len(sum.Top) > cfg.TopK {
			t.Fatalf("planes=%v: decoded %d top flows (cap %d)", planes, len(sum.Top), cfg.TopK)
		}
		if planes {
			// Decoded planes reproduce the live estimates exactly.
			for i := 0; i < 40; i++ {
				f := "f" + strconv.Itoa(i)
				wantP, wantB := fs.Estimate(FlowID(f))
				gotP, gotB, ok := sum.Estimate(f)
				if !ok || gotP != wantP || gotB != wantB {
					t.Fatalf("decoded estimate(%s) = %d/%d,%v; live %d/%d", f, gotP, gotB, ok, wantP, wantB)
				}
			}
		} else if _, _, ok := sum.Estimate("f0"); ok {
			t.Fatal("Estimate succeeded without planes")
		}
	}
}

// TestSketchEpochAdvances: the epoch moves on every update (the delta
// codec's resend trigger) and is stable across snapshots when quiescent.
func TestSketchEpochAdvances(t *testing.T) {
	fs := NewFlowSketch(SketchConfig{Width: 64, Depth: 2, TopK: 4, Stripes: 1})
	if fs.Epoch() != 0 {
		t.Fatalf("fresh sketch epoch = %d", fs.Epoch())
	}
	fs.Update("a", 1, 100)
	fs.Update("b", 2, 200)
	if fs.Epoch() != 2 {
		t.Fatalf("epoch after 2 updates = %d", fs.Epoch())
	}
	b1, b2 := fs.Encode(), fs.Encode()
	if string(b1) != string(b2) {
		t.Fatal("quiescent snapshots differ")
	}
}

// TestDecodeSketchRejectsHostileBlobs: every malformed-input class the
// decoder guards against must error, not panic or allocate per claim.
func TestDecodeSketchRejectsHostileBlobs(t *testing.T) {
	fs := NewFlowSketch(SketchConfig{Width: 64, Depth: 2, TopK: 4, Stripes: 1})
	fs.Update("x", 3, 300)
	good := fs.Encode()

	cases := map[string][]byte{
		"empty":           {},
		"short":           good[:3],
		"bad magic":       append([]byte{'X', 'Y'}, good[2:]...),
		"bad version":     append([]byte{'F', 'K', 9}, good[3:]...),
		"truncated body":  good[:len(good)-2],
		"trailing bytes":  append(append([]byte{}, good...), 0),
		"zero width":      {'F', 'K', 1, 0, 2, 1, 4, 0, 0, 0, 0, 0},
		"width over max":  {'F', 'K', 1, 0xFF, 0xFF, 0xFF, 0x7F, 2, 1, 4, 0, 0, 0, 0, 0},
		"topk over frame": {'F', 'K', 1, 64, 2, 1, 4, 0, 0, 0, 0, 200},
	}
	for name, blob := range cases {
		if _, err := DecodeSketch(blob); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	if _, err := DecodeSketch(good); err != nil {
		t.Fatalf("control blob rejected: %v", err)
	}
}

// --- Concurrency (meaningful under -race) -----------------------------

// TestSketchConcurrentUpdateSnapshot hammers Update from many goroutines
// while concurrent readers snapshot, estimate, and total. Afterwards the
// totals must equal the injected sums exactly and tracked flows must be
// exact — no update may be torn or lost.
func TestSketchConcurrentUpdateSnapshot(t *testing.T) {
	fs := NewFlowSketch(SketchConfig{Width: 512, Depth: 3, TopK: 32, Stripes: 4})
	const (
		workers = 8
		perG    = 4992 // divisible by flows: every flow sees the same count
		flows   = 16   // few enough that all stay tracked exactly
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				fs.Update(FlowID("f"+strconv.Itoa(i%flows)), 2, 300)
			}
		}(w)
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := DecodeSketch(fs.Encode()); err != nil {
					t.Error(err)
					return
				}
				fs.Estimate("f0")
				fs.Totals()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()

	wantPkts := uint64(workers * perG * 2)
	if totP, totB := fs.Totals(); totP != wantPkts || totB != wantPkts/2*300 {
		t.Fatalf("totals %d/%d; want %d/%d", totP, totB, wantPkts, wantPkts/2*300)
	}
	sum, err := DecodeSketch(fs.Encode())
	if err != nil {
		t.Fatal(err)
	}
	perFlow := wantPkts / flows
	for _, tf := range sum.Top {
		if !tf.Exact() || tf.Pkts != perFlow {
			t.Fatalf("flow %s: %d pkts exact=%v; want %d exact", tf.Flow, tf.Pkts, tf.Exact(), perFlow)
		}
	}
}

// --- The 1M-flow lab --------------------------------------------------

// heapAlloc returns the live heap after a full GC.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// legacyFlowAttr mirrors what the legacy exact path keeps per flow: two
// interned attribute-name strings and two live attr values (the registry
// map entries and the per-record attrs of rule_<flow>_packets/_bytes).
type legacyFlowAttr struct {
	pktsName, bytsName string
	pkts, byts         float64
}

// TestSketchMillionFlowsLab is the acceptance lab: 1M distinct flows
// through the sketch. It asserts
//
//  1. sketch memory is constant — the live heap does not grow with flow
//     count, and the configured footprint is ≥100× below what the legacy
//     per-flow attr path costs at 1M flows (measured on a real slice of
//     the legacy representation, then extrapolated — the legacy path
//     cannot even reach 1M, its name registry caps at 16,384);
//  2. heavy hitters decode with exact counts;
//  3. tail estimates stay within ε·N;
//  4. the vswitch Count hot path with the sketch enabled stays within a
//     generous factor of the rule-counter-only baseline (the precise
//     ratio is recorded in EXPERIMENTS.md; the gate only catches a
//     pathological slowdown).
func TestSketchMillionFlowsLab(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-flow lab skipped in -short")
	}
	const (
		heavies = 64
		// heavyPkts is far above anything conservative-update inflation can
		// reach for a tail flow (cells are bounded by per-stripe traffic
		// plus heavy collisions), so the true top-64 is unambiguous.
		heavyPkts  = uint64(1) << 40
		tailFlows  = 1_000_000
		memRatio   = 100.0
		throttleX  = 8.0 // pathology gate, not the reported number
		legacyMeas = 16384
	)
	cfg := SketchConfig{Width: 2048, Depth: 4, TopK: heavies, Stripes: 4}
	fs := NewFlowSketch(cfg)

	want := make(map[string]uint64, heavies)
	for i := 0; i < heavies; i++ {
		f := "heavy-" + strconv.Itoa(i)
		fs.Update(FlowID(f), heavyPkts, heavyPkts*1500)
		want[f] = heavyPkts
	}

	// 1M-flow tail. Flow IDs are built outside the measured heap window
	// in chunks so the ID strings themselves (transient input, identical
	// for both modes) don't dominate the measurement.
	before := heapAlloc()
	var ids [4096]FlowID
	for base := 0; base < tailFlows; base += len(ids) {
		for i := range ids {
			ids[i] = FlowID("tail-" + strconv.Itoa(base+i))
		}
		for _, f := range ids {
			fs.Update(f, 1, 1500)
		}
	}
	grew := int64(heapAlloc()) - int64(before)
	if grew > 8<<20 {
		t.Fatalf("sketch heap grew %d bytes across 1M flows; want ~0 (constant memory)", grew)
	}

	// Legacy cost, measured on the largest population the legacy path can
	// legally hold (the 16,384-name registry cap), then scaled to 1M.
	lb := heapAlloc()
	legacy := make(map[string]*legacyFlowAttr, legacyMeas)
	for i := 0; i < legacyMeas; i++ {
		f := "tail-" + strconv.Itoa(i)
		legacy[f] = &legacyFlowAttr{
			pktsName: "rule_" + f + "_packets",
			bytsName: "rule_" + f + "_bytes",
			pkts:     1, byts: 1500,
		}
	}
	legacyPerFlow := float64(int64(heapAlloc())-int64(lb)) / legacyMeas
	runtime.KeepAlive(legacy)
	legacyAt1M := legacyPerFlow * tailFlows
	sketchBytes := float64(fs.MemoryBytes())
	t.Logf("sketch %d B fixed; legacy %.0f B/flow → %.0f MB at 1M flows (%.0f× sketch); heap grew %d B over the tail",
		fs.MemoryBytes(), legacyPerFlow, legacyAt1M/1e6, legacyAt1M/sketchBytes, grew)
	if legacyAt1M < memRatio*sketchBytes {
		t.Fatalf("legacy at 1M flows = %.0f B, under %.0f× sketch footprint %.0f B", legacyAt1M, memRatio, sketchBytes)
	}

	// Heavy hitters are exact through encode/decode.
	sum, err := DecodeSketch(fs.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]TopFlow, len(sum.Top))
	for _, tf := range sum.Top {
		got[tf.Flow] = tf
	}
	for f, pkts := range want {
		tf, ok := got[f]
		if !ok || !tf.Exact() || tf.Pkts != pkts {
			t.Fatalf("heavy flow %s at 1M flows: got %+v; want exact %d pkts", f, tf, pkts)
		}
	}

	// Tail estimates obey ε·N (sampled; the full scan is the property
	// test's job at smaller scale).
	totP, _ := fs.Totals()
	bound := uint64(cfg.Epsilon() * float64(totP))
	var over int
	for i := 0; i < 1000; i++ {
		est, _ := fs.Estimate(FlowID("tail-" + strconv.Itoa(i*997)))
		if est-1 > bound {
			over++
		}
	}
	if maxOver := int(2*cfg.DeltaProb()*1000) + 1; over > maxOver {
		t.Fatalf("%d/1000 sampled tail flows past ε·N = %d (allowed %d)", over, bound, maxOver)
	}

	// Hot-path throughput: Count with sketch vs rule counters only.
	base := NewVSwitch("m0/vswitch-base")
	base.InstallToPNIC("bench")
	br := base.Lookup("bench")
	sk := NewVSwitch("m0/vswitch-sketch")
	sk.EnableFlowSketch(cfg)
	sk.InstallToPNIC("bench")
	sr := sk.Lookup("bench")
	b := Batch{Packets: 32, Bytes: 48000}
	const iters = 1_000_000
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		base.Count(br, b)
	}
	baseDur := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		sk.Count(sr, b)
	}
	skDur := time.Since(t0)
	ratio := float64(skDur) / float64(baseDur)
	t.Logf("vswitch Count: baseline %.1f ns/op, sketch %.1f ns/op (%.2fx)",
		float64(baseDur)/iters, float64(skDur)/iters, ratio)
	if ratio > throttleX {
		t.Fatalf("sketch-enabled Count is %.1fx baseline; pathology gate is %.0fx", ratio, throttleX)
	}
}

// --- Allocation budget (make bench-sketch, CI) ------------------------

// TestSketchUpdateAllocBudget pins the steady-state Update path to the
// checked-in budget (testdata/sketch_alloc_budget.txt, currently 0): a
// mix of tracked heavy-hitter increments and non-admitted tail updates
// must not allocate.
func TestSketchUpdateAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/sketch_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parse budget: %v", err)
	}
	fs := NewFlowSketch(SketchConfig{Width: 1024, Depth: 4, TopK: 16, Stripes: 2})
	// Heavy entries large enough that tail estimates never trigger an
	// eviction (admission churns the index map) during the window.
	tracked := make([]FlowID, 16)
	for i := range tracked {
		tracked[i] = FlowID("heavy-" + strconv.Itoa(i))
		fs.Update(tracked[i], 1<<40, 1<<42)
	}
	tail := make([]FlowID, 64)
	for i := range tail {
		tail[i] = FlowID("tail-" + strconv.Itoa(i))
	}
	var n int
	step := func() {
		fs.Update(tracked[n%len(tracked)], 4, 6000)
		fs.Update(tail[n%len(tail)], 1, 1500)
		n++
	}
	for i := 0; i < 200; i++ {
		step()
	}
	got := testing.AllocsPerRun(500, step)
	t.Logf("steady-state sketch allocs per 2 updates = %.2f (budget %s)", got, strings.TrimSpace(string(raw)))
	if got > budget {
		t.Fatalf("sketch allocs = %.2f exceeds budget %.2f (testdata/sketch_alloc_budget.txt)", got, budget)
	}
}

// BenchmarkSketchUpdate is the datapath cost of one Update: tracked flow
// (the common case — a rule's flow stays in the table) on a warmed
// sketch.
func BenchmarkSketchUpdate(b *testing.B) {
	fs := NewFlowSketch(SketchConfig{})
	flows := make([]FlowID, 256)
	for i := range flows {
		flows[i] = FlowID("bench-flow-" + strconv.Itoa(i))
		fs.Update(flows[i], 1, 1500)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Update(flows[i&255], 32, 48000)
	}
}

// BenchmarkSketchUpdateParallel measures stripe-contention behavior: all
// cores updating disjoint flow sets.
func BenchmarkSketchUpdateParallel(b *testing.B) {
	fs := NewFlowSketch(SketchConfig{})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		flows := make([]FlowID, 64)
		for i := range flows {
			flows[i] = FlowID(fmt.Sprintf("p-%p-%d", &flows, i))
		}
		i := 0
		for pb.Next() {
			fs.Update(flows[i&63], 32, 48000)
			i++
		}
	})
}

// BenchmarkSketchEncode is the snapshot cost at sweep cadence (the
// DUMP-SKETCH reply body).
func BenchmarkSketchEncode(b *testing.B) {
	fs := NewFlowSketch(SketchConfig{})
	for i := 0; i < 100000; i++ {
		fs.Update(FlowID("f"+strconv.Itoa(i%2000)), 1, 1500)
	}
	buf := fs.Encode()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = fs.AppendEncode(buf[:0])
	}
}
