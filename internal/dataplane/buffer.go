package dataplane

import "sync/atomic"

// Buffer is a bounded FIFO of batches — the model of every queue on the
// software datapath (NIC rings, per-CPU backlogs, TUN socket queues, guest
// socket buffers). Capacity may be bounded in packets, bytes, or both
// (zero means unbounded in that dimension).
//
// Enqueue never blocks: whatever does not fit is returned to the caller,
// which then decides whether the overflow is a drop (non-blocking producer,
// e.g. the virtual switch writing to a TUN) or backpressure (blocking
// producer, e.g. QEMU writing to a full vNIC ring). Drops are accounted by
// the owning element, not the buffer, because attribution — *which* element
// dropped — is exactly the signal Algorithm 1 diagnoses on.
type Buffer struct {
	capPackets int
	capBytes   int64

	// The queue itself has a single writer (the machine tick loop), but
	// the occupancy gauges are read concurrently by agent snapshots, so
	// they are atomics.
	q       []Batch
	packets atomic.Int64
	bytes   atomic.Int64
}

// NewBuffer returns a buffer bounded by capPackets packets and capBytes
// bytes; zero disables that bound.
func NewBuffer(capPackets int, capBytes int64) *Buffer {
	return &Buffer{capPackets: capPackets, capBytes: capBytes}
}

// Len returns the number of queued packets.
func (b *Buffer) Len() int { return int(b.packets.Load()) }

// Bytes returns the number of queued bytes.
func (b *Buffer) Bytes() int64 { return b.bytes.Load() }

// CapPackets returns the packet bound (0 = unbounded).
func (b *Buffer) CapPackets() int { return b.capPackets }

// FreePackets returns remaining packet capacity (MaxInt-ish if unbounded).
func (b *Buffer) FreePackets() int {
	if b.capPackets == 0 {
		return int(^uint(0) >> 1)
	}
	n := int(b.packets.Load())
	if n >= b.capPackets {
		return 0
	}
	return b.capPackets - n
}

// FreeBytes returns remaining byte capacity (MaxInt64 if unbounded).
func (b *Buffer) FreeBytes() int64 {
	if b.capBytes == 0 {
		return int64(^uint64(0) >> 1)
	}
	n := b.bytes.Load()
	if n >= b.capBytes {
		return 0
	}
	return b.capBytes - n
}

// Empty reports whether the buffer holds no traffic.
func (b *Buffer) Empty() bool { return b.packets.Load() == 0 }

// Enqueue appends as much of batch as fits and returns the overflow.
func (b *Buffer) Enqueue(batch Batch) (overflow Batch) {
	if batch.Empty() {
		return Batch{}
	}
	fit := batch
	if free := b.FreePackets(); fit.Packets > free {
		fit, overflow = fit.SplitPackets(free)
	}
	if free := b.FreeBytes(); fit.Bytes > free {
		var over2 Batch
		fit, over2 = fit.SplitBytes(free)
		overflow = merge(over2, overflow)
	}
	b.push(fit)
	return overflow
}

func (b *Buffer) push(batch Batch) {
	if batch.Empty() {
		return
	}
	// Coalesce with the tail when it is the same flow and destination, to
	// keep queues short under fluid traffic.
	if n := len(b.q); n > 0 {
		t := &b.q[n-1]
		if t.Flow == batch.Flow && t.DstVM == batch.DstVM && t.FB == batch.FB && t.Egress == batch.Egress {
			t.Packets += batch.Packets
			t.Bytes += batch.Bytes
			b.packets.Add(int64(batch.Packets))
			b.bytes.Add(batch.Bytes)
			return
		}
	}
	b.q = append(b.q, batch)
	b.packets.Add(int64(batch.Packets))
	b.bytes.Add(batch.Bytes)
}

// merge combines two (possibly empty) overflow fragments of the same batch.
func merge(a, b Batch) Batch {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	a.Packets += b.Packets
	a.Bytes += b.Bytes
	return a
}

// Dequeue removes and returns up to maxPackets packets and maxBytes bytes,
// preserving FIFO order. Negative bounds mean "no limit in that dimension".
// A head batch is split if only part of it fits within the bounds.
func (b *Buffer) Dequeue(maxPackets int, maxBytes int64) []Batch {
	if maxPackets == 0 || maxBytes == 0 || b.packets.Load() == 0 {
		return nil
	}
	var out []Batch
	for len(b.q) > 0 {
		head := b.q[0]
		take := head
		if maxPackets >= 0 && take.Packets > maxPackets {
			take, _ = take.SplitPackets(maxPackets)
		}
		if maxBytes >= 0 && take.Bytes > maxBytes {
			take, _ = take.SplitBytes(maxBytes)
		}
		if take.Empty() {
			break
		}
		if take.Packets == head.Packets {
			b.q = b.q[1:]
		} else {
			_, rest := head.SplitPackets(take.Packets)
			b.q[0] = rest
		}
		b.packets.Add(int64(-take.Packets))
		b.bytes.Add(-take.Bytes)
		out = append(out, take)
		if maxPackets >= 0 {
			maxPackets -= take.Packets
			if maxPackets == 0 {
				break
			}
		}
		if maxBytes >= 0 {
			maxBytes -= take.Bytes
			if maxBytes <= 0 {
				break
			}
		}
	}
	if len(b.q) == 0 {
		b.q = nil // release backing array
	}
	return out
}

// Peek returns the head batch without removing it.
func (b *Buffer) Peek() (Batch, bool) {
	if len(b.q) == 0 {
		return Batch{}, false
	}
	return b.q[0], true
}

// DrainAll removes and returns everything in the buffer.
func (b *Buffer) DrainAll() []Batch {
	out := b.q
	b.q = nil
	b.packets.Store(0)
	b.bytes.Store(0)
	return out
}
