package dataplane

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// FlowSketch summarizes per-flow traffic in constant memory: a count-min
// sketch (conservative update, separate packet and byte planes) paired
// with an exact top-k heavy-hitter table, maintained inline on the
// VSwitch datapath. It replaces the O(flows) per-rule counter
// enumeration — and the one-extension-AttrID-per-flow registry bill —
// with a fixed-size summary whose heavy-hitter values are exact and
// whose tail estimates obey the classic count-min bound: estimate ≥
// true, and P[estimate − true > ε·N] ≤ δ with ε = e/width, δ = e^−depth
// (the "Lean Algorithms" sketch pair, arXiv:1911.06951).
//
// Concurrency: flows hash onto a fixed set of stripes, each owning its
// own sketch planes and top-k table behind a private mutex, so datapath
// goroutines contend only when their flows collide on a stripe. The
// update path performs zero heap allocations in steady state (gated by
// testdata/sketch_alloc_budget.txt).
//
// Exactness: a top-k entry tracks the flow's packets/bytes exactly from
// the moment it is admitted, plus the count-min estimate it was admitted
// with. A flow admitted on its first packet therefore carries error 0 —
// its reported value is exact — and the per-entry ErrPkts/ErrBytes bound
// the overcount for flows admitted later. Per-stripe tables hold the
// full K entries each, which makes the merged global top-k sound: a flow
// among the global top K has at most K−1 larger flows anywhere, so it
// cannot have been evicted from its own stripe's K-entry table.
type FlowSketch struct {
	cfg     SketchConfig
	stripes []sketchStripe
	epoch   atomic.Uint64
}

// SketchConfig sizes a FlowSketch. The error bound of the count-min
// planes is ε = e/Width with confidence 1−δ, δ = e^−Depth.
type SketchConfig struct {
	// Width is the number of counters per sketch row. Default 4096
	// (ε ≈ 6.6e-4).
	Width int
	// Depth is the number of rows (independent hash functions). Default 4
	// (δ ≈ 1.8%).
	Depth int
	// TopK is the heavy-hitter table capacity per stripe, and the size of
	// the merged top-k in snapshots. Default 64.
	TopK int
	// Stripes is the lock-striping factor. Default 8.
	Stripes int
	// WirePlanes includes the raw count-min planes in encoded snapshots,
	// letting consumers estimate arbitrary (non-top-k) flows instead of
	// only bounding them by ε·N. Costs ~Stripes·Depth·Width varints per
	// snapshot, so it defaults to off for sweep-cadence telemetry.
	WirePlanes bool
}

func (c SketchConfig) withDefaults() SketchConfig {
	if c.Width <= 0 {
		c.Width = 4096
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.Stripes <= 0 {
		c.Stripes = 8
	}
	return c
}

// Epsilon is the relative error bound of the configured planes: the
// count-min overestimate exceeds Epsilon()·N (N = total packets or bytes)
// with probability at most DeltaProb().
func (c SketchConfig) Epsilon() float64 { return math.E / float64(c.Width) }

// DeltaProb is the failure probability of the Epsilon bound.
func (c SketchConfig) DeltaProb() float64 { return math.Exp(-float64(c.Depth)) }

// topEntry is one heavy-hitter table slot. pkts/bytes are the count-min
// estimate at admission plus exact increments since; errPkts/errBytes are
// the admission estimates' possible overcount (0 = value is exact).
type topEntry struct {
	flow     FlowID
	pkts     uint64
	bytes    uint64
	errPkts  uint64
	errBytes uint64
}

// sketchStripe is one lock stripe: private count-min planes, a top-k
// table, and the stripe's traffic totals.
type sketchStripe struct {
	mu      sync.Mutex
	pkts    []uint64 // depth × width, row-major
	bytes   []uint64
	entries []topEntry
	index   map[FlowID]int
	totPkts uint64
	totByts uint64
	_       [24]byte // pad stripes apart to limit false sharing
}

// NewFlowSketch builds a sketch with the given bounds (zero fields take
// defaults).
func NewFlowSketch(cfg SketchConfig) *FlowSketch {
	cfg = cfg.withDefaults()
	fs := &FlowSketch{cfg: cfg, stripes: make([]sketchStripe, cfg.Stripes)}
	for i := range fs.stripes {
		st := &fs.stripes[i]
		st.pkts = make([]uint64, cfg.Width*cfg.Depth)
		st.bytes = make([]uint64, cfg.Width*cfg.Depth)
		st.entries = make([]topEntry, 0, cfg.TopK)
		st.index = make(map[FlowID]int, cfg.TopK)
	}
	return fs
}

// Config returns the sketch's effective (defaulted) configuration.
func (f *FlowSketch) Config() SketchConfig { return f.cfg }

// Epoch returns the summary epoch: it advances on every update, so a
// consumer that cached a snapshot at epoch E needs a new one iff the
// current epoch differs.
func (f *FlowSketch) Epoch() uint64 { return f.epoch.Load() }

// MemoryBytes is the sketch's resident footprint, fixed at construction:
// it does not grow with the number of distinct flows observed.
func (f *FlowSketch) MemoryBytes() int {
	per := 2*f.cfg.Width*f.cfg.Depth*8 + // both planes
		f.cfg.TopK*int(64) + // top-k entries (flow header + 4 uint64)
		f.cfg.TopK*48 // index map slots, approximate
	return f.cfg.Stripes * per
}

// fnv1a64 hashes a flow ID (inlined FNV-1a: the datapath cannot afford a
// hash.Hash allocation per batch).
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer, deriving the second hash for the
// per-row positions from the first.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// rowIdx is row d's cell index. The naive double-hashing form
// (h1 + d·h2) mod width makes full-depth collisions a 1/width² event —
// two flows agreeing on both residues collide in *every* row, and
// conservative-update writeback then snowballs one flow's count into the
// other's estimate (observed: tail flows inflated past genuine heavy
// hitters at 1M flows). Mixing before the reduction makes per-row
// collisions independent, restoring the 1/width^depth rate.
func rowIdx(h1, h2 uint64, d int, width uint64) int {
	return int(mix64(h1+uint64(d)*h2) % width)
}

// Update records a batch of the flow: pkts packets totalling byts bytes.
// Safe for concurrent use; zero allocations in steady state.
func (f *FlowSketch) Update(flow FlowID, pkts, byts uint64) {
	h1 := fnv1a64(string(flow))
	h2 := mix64(h1) | 1
	st := &f.stripes[h1%uint64(len(f.stripes))]
	width := uint64(f.cfg.Width)

	st.mu.Lock()
	st.totPkts += pkts
	st.totByts += byts

	// Conservative update: raise only the cells below the new estimate,
	// per plane, so collisions inflate the sketch as little as possible.
	estP := uint64(math.MaxUint64)
	estB := uint64(math.MaxUint64)
	for d := 0; d < f.cfg.Depth; d++ {
		idx := d*f.cfg.Width + rowIdx(h1, h2, d, width)
		if st.pkts[idx] < estP {
			estP = st.pkts[idx]
		}
		if st.bytes[idx] < estB {
			estB = st.bytes[idx]
		}
	}
	estP += pkts
	estB += byts
	for d := 0; d < f.cfg.Depth; d++ {
		idx := d*f.cfg.Width + rowIdx(h1, h2, d, width)
		if st.pkts[idx] < estP {
			st.pkts[idx] = estP
		}
		if st.bytes[idx] < estB {
			st.bytes[idx] = estB
		}
	}

	// Heavy-hitter maintenance. Tracked flows count exactly; a new flow
	// displaces the smallest entry only when its estimate beats it.
	if i, ok := st.index[flow]; ok {
		st.entries[i].pkts += pkts
		st.entries[i].bytes += byts
	} else if len(st.entries) < cap(st.entries) {
		st.index[flow] = len(st.entries)
		st.entries = append(st.entries, topEntry{
			flow: flow, pkts: estP, bytes: estB,
			errPkts: estP - pkts, errBytes: estB - byts,
		})
	} else {
		min := 0
		for i := 1; i < len(st.entries); i++ {
			if st.entries[i].pkts < st.entries[min].pkts {
				min = i
			}
		}
		if estP > st.entries[min].pkts {
			delete(st.index, st.entries[min].flow)
			st.index[flow] = min
			st.entries[min] = topEntry{
				flow: flow, pkts: estP, bytes: estB,
				errPkts: estP - pkts, errBytes: estB - byts,
			}
		}
	}
	st.mu.Unlock()
	f.epoch.Add(1)
}

// Estimate returns the count-min estimate of one flow's packets and
// bytes. Estimates never undercount; they overcount by at most ε·N with
// probability 1−δ.
func (f *FlowSketch) Estimate(flow FlowID) (pkts, byts uint64) {
	h1 := fnv1a64(string(flow))
	h2 := mix64(h1) | 1
	st := &f.stripes[h1%uint64(len(f.stripes))]
	width := uint64(f.cfg.Width)
	pkts, byts = math.MaxUint64, math.MaxUint64
	st.mu.Lock()
	for d := 0; d < f.cfg.Depth; d++ {
		idx := d*f.cfg.Width + rowIdx(h1, h2, d, width)
		if st.pkts[idx] < pkts {
			pkts = st.pkts[idx]
		}
		if st.bytes[idx] < byts {
			byts = st.bytes[idx]
		}
	}
	st.mu.Unlock()
	return pkts, byts
}

// Totals returns the total packets and bytes observed (the N of the
// ε·N error bound).
func (f *FlowSketch) Totals() (pkts, byts uint64) {
	for i := range f.stripes {
		st := &f.stripes[i]
		st.mu.Lock()
		pkts += st.totPkts
		byts += st.totByts
		st.mu.Unlock()
	}
	return pkts, byts
}

// Sketch blob layout (version 1). All integers are uvarints unless
// noted. The header is fixed-position so SketchEpoch can read the epoch
// without decoding the whole summary.
//
//	'F' 'K' 0x01
//	width | depth | stripes | topk
//	epoch | totalPkts | totalBytes
//	u8 flags (bit0: count-min planes present)
//	uvarint n, n·( uvarint len + flow bytes,
//	               pkts | bytes | errPkts | errBytes )       merged top-k
//	planes?: stripes·depth·width packet cells, then byte cells
const (
	sketchMagic0  = 'F'
	sketchMagic1  = 'K'
	sketchVersion = 1

	sketchFlagPlanes = 1 << 0

	// Decode guards: reject blobs whose claimed geometry could not come
	// from a sane config, so a hostile frame cannot balloon memory.
	sketchMaxWidth   = 1 << 20
	sketchMaxDepth   = 64
	sketchMaxStripes = 256
	sketchMaxTopK    = 1 << 14
)

// AppendEncode appends the sketch's encoded snapshot to dst and returns
// the extended slice. Stripes are locked one at a time, so the snapshot
// is per-stripe consistent (counters are monotone; a sweep-cadence reader
// cannot tell the difference).
func (f *FlowSketch) AppendEncode(dst []byte) []byte {
	cfg := f.cfg
	dst = append(dst, sketchMagic0, sketchMagic1, sketchVersion)
	dst = binary.AppendUvarint(dst, uint64(cfg.Width))
	dst = binary.AppendUvarint(dst, uint64(cfg.Depth))
	dst = binary.AppendUvarint(dst, uint64(cfg.Stripes))
	dst = binary.AppendUvarint(dst, uint64(cfg.TopK))
	dst = binary.AppendUvarint(dst, f.epoch.Load())
	totP, totB := f.Totals()
	dst = binary.AppendUvarint(dst, totP)
	dst = binary.AppendUvarint(dst, totB)
	var flags byte
	if cfg.WirePlanes {
		flags |= sketchFlagPlanes
	}
	dst = append(dst, flags)

	// Merge the per-stripe heavy-hitter tables and keep the global top K.
	merged := make([]topEntry, 0, cfg.Stripes*cfg.TopK)
	for i := range f.stripes {
		st := &f.stripes[i]
		st.mu.Lock()
		merged = append(merged, st.entries...)
		st.mu.Unlock()
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].pkts != merged[j].pkts {
			return merged[i].pkts > merged[j].pkts
		}
		return merged[i].flow < merged[j].flow
	})
	if len(merged) > cfg.TopK {
		merged = merged[:cfg.TopK]
	}
	dst = binary.AppendUvarint(dst, uint64(len(merged)))
	for _, e := range merged {
		dst = binary.AppendUvarint(dst, uint64(len(e.flow)))
		dst = append(dst, e.flow...)
		dst = binary.AppendUvarint(dst, e.pkts)
		dst = binary.AppendUvarint(dst, e.bytes)
		dst = binary.AppendUvarint(dst, e.errPkts)
		dst = binary.AppendUvarint(dst, e.errBytes)
	}

	if cfg.WirePlanes {
		for i := range f.stripes {
			st := &f.stripes[i]
			st.mu.Lock()
			for _, c := range st.pkts {
				dst = binary.AppendUvarint(dst, c)
			}
			st.mu.Unlock()
		}
		for i := range f.stripes {
			st := &f.stripes[i]
			st.mu.Lock()
			for _, c := range st.bytes {
				dst = binary.AppendUvarint(dst, c)
			}
			st.mu.Unlock()
		}
	}
	return dst
}

// Encode returns a fresh encoded snapshot.
func (f *FlowSketch) Encode() []byte { return f.AppendEncode(nil) }

// TopFlow is one decoded heavy-hitter entry. Pkts/Bytes are exact when
// ErrPkts/ErrBytes are 0 (the flow was tracked from its first packet);
// otherwise they overcount the truth by at most the Err values.
type TopFlow struct {
	Flow     string `json:"flow"`
	Pkts     uint64 `json:"pkts"`
	Bytes    uint64 `json:"bytes"`
	ErrPkts  uint64 `json:"err_pkts,omitempty"`
	ErrBytes uint64 `json:"err_bytes,omitempty"`
}

// Exact reports whether the entry's values match the true flow counts.
func (t TopFlow) Exact() bool { return t.ErrPkts == 0 && t.ErrBytes == 0 }

// SketchSummary is a decoded sketch blob: the merged top-k, the traffic
// totals behind the ε·N bound, and (when the producer included them) the
// raw count-min planes for estimating arbitrary flows.
type SketchSummary struct {
	Width, Depth, Stripes, TopKCap int
	Epoch                          uint64
	TotalPkts, TotalBytes          uint64
	Top                            []TopFlow
	// pkts/bytes hold the planes of every stripe concatenated
	// (stripe-major, then row-major); nil when the blob omitted them.
	pkts, bytes []uint64
}

// HasPlanes reports whether the summary can estimate non-top-k flows.
func (s *SketchSummary) HasPlanes() bool { return s.pkts != nil }

// Epsilon is the summary's relative error bound (e/width).
func (s *SketchSummary) Epsilon() float64 { return math.E / float64(s.Width) }

// DeltaProb is the probability the Epsilon bound fails (e^−depth).
func (s *SketchSummary) DeltaProb() float64 { return math.Exp(-float64(s.Depth)) }

// ErrBoundPkts is the absolute packet-count error bound ε·N: any flow's
// estimate (and any flow absent from the top-k) is within this of its
// true count with probability 1−DeltaProb.
func (s *SketchSummary) ErrBoundPkts() float64 { return s.Epsilon() * float64(s.TotalPkts) }

// Estimate returns the count-min estimate for an arbitrary flow. ok is
// false when the blob did not carry the planes; callers then fall back
// to the ErrBoundPkts annotation.
func (s *SketchSummary) Estimate(flow string) (pkts, byts uint64, ok bool) {
	if s.pkts == nil {
		return 0, 0, false
	}
	h1 := fnv1a64(flow)
	h2 := mix64(h1) | 1
	stripe := int(h1 % uint64(s.Stripes))
	base := stripe * s.Width * s.Depth
	pkts, byts = math.MaxUint64, math.MaxUint64
	for d := 0; d < s.Depth; d++ {
		idx := base + d*s.Width + rowIdx(h1, h2, d, uint64(s.Width))
		if s.pkts[idx] < pkts {
			pkts = s.pkts[idx]
		}
		if s.bytes[idx] < byts {
			byts = s.bytes[idx]
		}
	}
	return pkts, byts, true
}

// SketchEpoch reads the epoch out of an encoded blob without a full
// decode — the agent adapter stamps it into the attr value so delta
// codecs resend the payload only when the summary changed.
func SketchEpoch(blob []byte) (uint64, bool) {
	if len(blob) < 4 || blob[0] != sketchMagic0 || blob[1] != sketchMagic1 || blob[2] != sketchVersion {
		return 0, false
	}
	off := 3
	for i := 0; i < 4; i++ { // skip width, depth, stripes, topk
		_, n := binary.Uvarint(blob[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
	}
	epoch, n := binary.Uvarint(blob[off:])
	if n <= 0 {
		return 0, false
	}
	return epoch, true
}

// sketchDec is a bounds-checked cursor over one blob.
type sketchDec struct {
	b   []byte
	off int
}

func (d *sketchDec) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("dataplane: sketch: bad uvarint at byte %d", d.off)
	}
	d.off += n
	return u, nil
}

// DecodeSketch parses an encoded sketch blob. Every geometry field is
// validated against the same bounds a sane config could produce, and
// every count against the remaining payload, so truncated or hostile
// blobs error instead of panicking or ballooning memory.
func DecodeSketch(blob []byte) (*SketchSummary, error) {
	if len(blob) < 4 {
		return nil, fmt.Errorf("dataplane: sketch blob of %d bytes too short", len(blob))
	}
	if blob[0] != sketchMagic0 || blob[1] != sketchMagic1 {
		return nil, fmt.Errorf("dataplane: bad sketch magic %#x %#x", blob[0], blob[1])
	}
	if blob[2] != sketchVersion {
		return nil, fmt.Errorf("dataplane: unsupported sketch version %d", blob[2])
	}
	d := sketchDec{b: blob, off: 3}
	s := &SketchSummary{}
	geom := [4]struct {
		dst *int
		max int
		nm  string
	}{
		{&s.Width, sketchMaxWidth, "width"},
		{&s.Depth, sketchMaxDepth, "depth"},
		{&s.Stripes, sketchMaxStripes, "stripes"},
		{&s.TopKCap, sketchMaxTopK, "topk"},
	}
	for _, g := range geom {
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if u == 0 || u > uint64(g.max) {
			return nil, fmt.Errorf("dataplane: sketch %s %d outside [1,%d]", g.nm, u, g.max)
		}
		*g.dst = int(u)
	}
	var err error
	if s.Epoch, err = d.uvarint(); err != nil {
		return nil, err
	}
	if s.TotalPkts, err = d.uvarint(); err != nil {
		return nil, err
	}
	if s.TotalBytes, err = d.uvarint(); err != nil {
		return nil, err
	}
	if d.off >= len(d.b) {
		return nil, fmt.Errorf("dataplane: sketch blob truncated before flags")
	}
	flags := d.b[d.off]
	d.off++

	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(s.TopKCap) || n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("dataplane: sketch top-k count %d exceeds cap %d or frame", n, s.TopKCap)
	}
	s.Top = make([]TopFlow, 0, n)
	for i := uint64(0); i < n; i++ {
		fl, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if fl > uint64(len(d.b)-d.off) {
			return nil, fmt.Errorf("dataplane: sketch flow name of %d bytes exceeds frame", fl)
		}
		tf := TopFlow{Flow: string(d.b[d.off : d.off+int(fl)])}
		d.off += int(fl)
		if tf.Pkts, err = d.uvarint(); err != nil {
			return nil, err
		}
		if tf.Bytes, err = d.uvarint(); err != nil {
			return nil, err
		}
		if tf.ErrPkts, err = d.uvarint(); err != nil {
			return nil, err
		}
		if tf.ErrBytes, err = d.uvarint(); err != nil {
			return nil, err
		}
		s.Top = append(s.Top, tf)
	}

	if flags&sketchFlagPlanes != 0 {
		cells := s.Stripes * s.Depth * s.Width
		if cells > len(d.b)-d.off { // ≥1 byte per cell
			return nil, fmt.Errorf("dataplane: sketch planes of %d cells exceed frame", cells)
		}
		s.pkts = make([]uint64, cells)
		s.bytes = make([]uint64, cells)
		for i := 0; i < cells; i++ {
			if s.pkts[i], err = d.uvarint(); err != nil {
				return nil, err
			}
		}
		for i := 0; i < cells; i++ {
			if s.bytes[i], err = d.uvarint(); err != nil {
				return nil, err
			}
		}
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("dataplane: sketch blob has %d trailing bytes", len(d.b)-d.off)
	}
	return s, nil
}
