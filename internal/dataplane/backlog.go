package dataplane

import (
	"fmt"
	"hash/fnv"

	"perfsight/internal/core"
)

// BacklogQueue is one per-CPU-core backlog queue (the kernel's
// softnet_data input queue, bounded by netdev_max_backlog — 300 packets on
// the paper's testbed). Both directions funnel through it: the pNIC driver
// enqueues wire arrivals and TAP transmit enqueues VM egress, which is why
// the paper singles it out as a contention point shared by every datapath
// on the machine (§7.2 case 1).
type BacklogQueue struct {
	Base
	q *Buffer

	// Fluid admission under saturation: in a real kernel, producers and
	// the softirq drain interleave at packet granularity, so when the
	// queue is saturated every producer loses the same fraction. The
	// tick-phased simulation would otherwise always hand the slots freed
	// by the drain to whichever producer runs next. satRatio is last
	// tick's accepted/offered ratio, applied to all enqueues while the
	// queue is overflowing.
	offeredCur float64
	satRatio   float64
	admitAcc   float64
	lastTx     uint64
	lastDrop   uint64
}

// NewBacklogQueue builds one core's backlog with the given packet bound.
func NewBacklogQueue(id core.ElementID, capPackets int) *BacklogQueue {
	b := &BacklogQueue{
		Base:     NewBase(id, core.KindPCPUBacklog),
		q:        NewBuffer(capPackets, 0),
		satRatio: 1,
	}
	b.AttachBuffer(b.q)
	return b
}

// BeginTick rolls the admission window: while the queue is overflowing,
// every producer is admitted at the ratio of last tick's service (NAPI
// dequeues) to last tick's offered load, spreading the loss fairly. The
// 1.1 slack lets admission recover as soon as the overload ends.
func (b *BacklogQueue) BeginTick() {
	tx := b.ES.Tx.Packets.Load()
	served := float64(tx - b.lastTx)
	b.lastTx = tx
	drop := b.ES.Drop.Packets.Load()
	dropped := drop - b.lastDrop
	b.lastDrop = drop
	if dropped > 0 && b.offeredCur > 0 && served < b.offeredCur {
		b.satRatio = 1.1 * served / b.offeredCur
		if b.satRatio > 1 {
			b.satRatio = 1
		}
	} else {
		b.satRatio = 1
	}
	b.offeredCur = 0
}

// Enqueue adds a batch; overflow is dropped here (netif_rx returning
// NET_RX_DROP — the "Backlog Enqueue" symptom of Table 1).
func (b *BacklogQueue) Enqueue(batch Batch) {
	if batch.Empty() {
		return
	}
	b.offeredCur += float64(batch.Packets)
	if b.satRatio < 1 {
		// Saturated: admit the fair fraction, drop the rest up front.
		b.admitAcc += float64(batch.Packets) * b.satRatio
		admit := int(b.admitAcc)
		b.admitAcc -= float64(admit)
		var preDrop Batch
		batch, preDrop = batch.SplitPackets(admit)
		b.CountDrop(preDrop)
	}
	over := b.q.Enqueue(batch)
	accepted := batch
	accepted.Packets -= over.Packets
	accepted.Bytes -= over.Bytes
	b.CountRx(accepted)
	b.CountDrop(over)
}

// Len returns queued packets.
func (b *BacklogQueue) Len() int { return b.q.Len() }

// BacklogSet is the machine's collection of per-core backlog queues with
// flow-hash steering (RSS/RPS). Queues() exposes the individual elements
// for registration with the agent.
type BacklogSet struct {
	queues []*BacklogQueue
	// NoFairAdmission disables saturation admission (ablation).
	NoFairAdmission bool
}

// NewBacklogSet builds n queues of capPackets each for the given machine.
func NewBacklogSet(machine core.MachineID, n, capPackets int) *BacklogSet {
	if n < 1 {
		n = 1
	}
	s := &BacklogSet{}
	for i := 0; i < n; i++ {
		id := core.ElementID(fmt.Sprintf("%s/cpu%d/backlog", machine, i))
		s.queues = append(s.queues, NewBacklogQueue(id, capPackets))
	}
	return s
}

// Queues returns the per-core queue elements.
func (s *BacklogSet) Queues() []*BacklogQueue { return s.queues }

// Enqueue steers the batch to its core's queue by flow hash.
func (s *BacklogSet) Enqueue(b Batch) {
	s.queues[s.index(b.Flow)].Enqueue(b)
}

// BeginTick rolls every queue's admission window.
func (s *BacklogSet) BeginTick() {
	if s.NoFairAdmission {
		return
	}
	for _, q := range s.queues {
		q.BeginTick()
	}
}

func (s *BacklogSet) index(f FlowID) int {
	if len(s.queues) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(f))
	return int(h.Sum32()) % len(s.queues)
}

// TotalLen returns queued packets across all cores.
func (s *BacklogSet) TotalLen() int {
	n := 0
	for _, q := range s.queues {
		n += q.Len()
	}
	return n
}

// TotalBytes returns queued bytes across all cores.
func (s *BacklogSet) TotalBytes() int64 {
	var n int64
	for _, q := range s.queues {
		n += q.q.Bytes()
	}
	return n
}

// TotalDrops returns the summed drop packet counters.
func (s *BacklogSet) TotalDrops() uint64 {
	var n uint64
	for _, q := range s.queues {
		n += q.ES.Drop.Packets.Load()
	}
	return n
}
