package dataplane

import (
	"time"

	"perfsight/internal/core"
	"perfsight/internal/sim"
)

// PNIC models the physical NIC: a DMA receive ring drained by the driver's
// interrupt handler, and a transmit queue drained onto the wire at line
// rate. When incoming traffic exceeds line rate or the ring is full — the
// virtualization stack is not clearing the DMA buffer quickly enough — the
// NIC drops, which is the Table-1 symptom for an incoming-bandwidth
// shortage.
type PNIC struct {
	Base
	RxCapBps float64
	TxCapBps float64

	rxRing  *Buffer
	txQueue *Buffer
}

// NewPNIC builds a pNIC with the given line rates and ring/queue bounds.
func NewPNIC(id core.ElementID, rxBps, txBps float64, ringPackets, txQueuePackets int) *PNIC {
	p := &PNIC{
		Base:     NewBase(id, core.KindPNIC),
		RxCapBps: rxBps,
		TxCapBps: txBps,
		rxRing:   NewBuffer(ringPackets, 0),
		txQueue:  NewBuffer(txQueuePackets, 0),
	}
	p.CapacityBps = rxBps
	p.AttachBuffer(p.rxRing)
	return p
}

// OfferRx admits wire arrivals for this tick: traffic beyond line rate or
// ring space is dropped at the pNIC.
func (p *PNIC) OfferRx(batches []Batch, dt time.Duration) {
	budget := sim.BytesIn(p.RxCapBps, dt)
	for _, b := range batches {
		if b.Empty() {
			continue
		}
		fit, over := b.SplitBytes(budget)
		budget -= fit.Bytes
		if !fit.Empty() {
			p.CountRx(fit)
			over = merge(p.rxRing.Enqueue(fit), over)
		}
		p.CountDrop(over)
	}
}

// DequeueRx hands up to maxPackets from the receive ring to the driver.
func (p *PNIC) DequeueRx(maxPackets int) []Batch {
	return p.rxRing.Dequeue(maxPackets, -1)
}

// RxRingLen returns the receive-ring occupancy in packets.
func (p *PNIC) RxRingLen() int { return p.rxRing.Len() }

// RxRingBytes returns the receive-ring occupancy in bytes.
func (p *PNIC) RxRingBytes() int64 { return p.rxRing.Bytes() }

// TxSpace returns free packet slots in the transmit queue. The NAPI
// routine consults it before dequeuing wire-bound packets from the backlog
// so that an outgoing-bandwidth shortage backpressures into the backlog
// (where the drops then appear, per Table 1) rather than vanishing here.
func (p *PNIC) TxSpace() int { return p.txQueue.FreePackets() }

// EnqueueTx queues wire-bound packets; the caller must have checked
// TxSpace, any overflow is dropped here as a safety net.
func (p *PNIC) EnqueueTx(b Batch) {
	p.CountDrop(p.txQueue.Enqueue(b))
}

// DrainTx emits up to line rate onto the wire for this tick.
func (p *PNIC) DrainTx(dt time.Duration) []Batch {
	out := p.txQueue.Dequeue(-1, sim.BytesIn(p.TxCapBps, dt))
	p.CountTx(out...)
	return out
}

// PNICDriver models the NIC driver's interrupt handler, which moves
// packets from the DMA ring into the per-CPU backlog queues (netif_rx).
// Its counters mirror net_device statistics. The driver itself has no
// buffer: overflow on enqueue is charged to the backlog element.
type PNICDriver struct {
	Base
	// CyclesPerPacket is the interrupt-handling cost.
	CyclesPerPacket float64
	// MembusFactor is bus bytes consumed per wire byte (DMA + sk_buff touch).
	MembusFactor float64
	// CostScale inflates the per-packet cost under host CPU load
	// (scheduling and cache overhead); the machine sets it each tick.
	CostScale float64
	// AllocFailRate is the fraction of packets whose sk_buff allocation
	// fails under memory-space pressure; such packets are dropped at the
	// driver (the Table 1 memory-space symptom). The machine sets it from
	// its free-memory model.
	AllocFailRate float64

	allocAcc float64
}

// NewPNICDriver builds the driver element.
func NewPNICDriver(id core.ElementID, cyclesPerPacket, membusFactor float64) *PNICDriver {
	return &PNICDriver{
		Base:            NewBase(id, core.KindPNICDriver),
		CyclesPerPacket: cyclesPerPacket,
		MembusFactor:    membusFactor,
	}
}

// Move transfers packets ring->backlog limited by the softirq cycle budget
// and the machine's memory-bus budget. Backlog overflow is dropped by the
// backlog element (the "Backlog Enqueue" location).
func (d *PNICDriver) Move(nic *PNIC, backlogs *BacklogSet, cpu *CycleBudget, bus *MembusBudget) {
	cost := d.CyclesPerPacket * scaleOr1(d.CostScale)
	for !cpu.Exhausted() {
		maxPkts := cpu.PacketsFor(cost)
		maxBytes := bus.WireBytesFor(d.MembusFactor)
		if maxPkts == 0 || maxBytes == 0 {
			return
		}
		got := nic.DequeueRx(min(maxPkts, 2048))
		if len(got) == 0 {
			return
		}
		for _, b := range got {
			if b.Bytes > maxBytes {
				var over Batch
				b, over = b.SplitBytes(maxBytes)
				// Bus starvation: leave the remainder in the ring for the
				// next tick (requeue at head is approximated by re-enqueue;
				// ring order among ticks is not diagnosis-relevant).
				nic.rxRing.Enqueue(over)
				if b.Empty() {
					return
				}
			}
			cpu.SpendPackets(b.Packets, cost)
			bus.SpendWireBytes(b.Bytes, d.MembusFactor)
			maxBytes -= b.Bytes
			d.CountRx(b)
			if d.AllocFailRate > 0 {
				d.allocAcc += float64(b.Packets) * d.AllocFailRate
				if fail := int(d.allocAcc); fail > 0 {
					d.allocAcc -= float64(fail)
					var dropped Batch
					dropped, b = b.SplitPackets(fail)
					d.CountDrop(dropped)
					if b.Empty() {
						continue
					}
				}
			}
			d.CountTx(b)
			backlogs.Enqueue(b)
		}
	}
}

// scaleOr1 treats an unset (zero) cost scale as 1.
func scaleOr1(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
