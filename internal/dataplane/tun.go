package dataplane

import (
	"perfsight/internal/core"
)

// TUN models the TAP/TUN device feeding one VM: a socket queue the virtual
// switch writes into (non-blocking — drops on overflow) and the hypervisor
// I/O handler reads from. The TUN socket buffer is "the last buffer before
// entering VMs" (§7.1); when a VM cannot drain it — starved of CPU, memory
// bandwidth, or simply under-provisioned — drops surface here, making the
// TUN the Table-1 symptom location for CPU/memory-bandwidth contention
// (aggregated across VMs) and for a single-VM bottleneck (individual).
type TUN struct {
	Base
	VM core.VMID
	q  *Buffer
}

// NewTUN builds the TUN for a VM with the given socket-queue bound.
func NewTUN(id core.ElementID, vm core.VMID, capPackets int) *TUN {
	t := &TUN{
		Base: NewBase(id, core.KindTUN),
		VM:   vm,
		q:    NewBuffer(capPackets, 0),
	}
	t.AttachBuffer(t.q)
	return t
}

// Write enqueues VM-bound traffic; overflow drops here.
func (t *TUN) Write(b Batch) {
	if b.Empty() {
		return
	}
	over := t.q.Enqueue(b)
	acc := b
	acc.Packets -= over.Packets
	acc.Bytes -= over.Bytes
	t.CountRx(acc)
	t.CountDrop(over)
}

// Read hands up to the given bounds to the hypervisor I/O handler.
func (t *TUN) Read(maxPackets int, maxBytes int64) []Batch {
	out := t.q.Dequeue(maxPackets, maxBytes)
	t.CountTx(out...)
	return out
}

// Len returns queued packets.
func (t *TUN) Len() int { return t.q.Len() }

// QueuedBytes returns queued bytes.
func (t *TUN) QueuedBytes() int64 { return t.q.Bytes() }
