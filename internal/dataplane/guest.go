package dataplane

import (
	"perfsight/internal/core"
)

// VNIC models the virtual NIC: a receive ring QEMU writes into and the
// guest driver drains, plus a transmit ring the guest fills and QEMU
// drains. Rings backpressure rather than drop — virtio-style NAPI polling —
// so a slow guest pushes congestion back into the TUN where it becomes
// externally visible (Table 1: VM bottleneck -> TUN, individual).
type VNIC struct {
	Base
	VM       core.VMID
	RxCapBps float64
	TxCapBps float64

	rxRing *Buffer
	txRing *Buffer
}

// NewVNIC builds a vNIC with the given line rate and ring bounds.
func NewVNIC(id core.ElementID, vm core.VMID, capBps float64, ringPackets int) *VNIC {
	v := &VNIC{
		Base:     NewBase(id, core.KindVNIC),
		VM:       vm,
		RxCapBps: capBps,
		TxCapBps: capBps,
		rxRing:   NewBuffer(ringPackets, 0),
		txRing:   NewBuffer(ringPackets, 0),
	}
	v.CapacityBps = capBps
	v.AttachBuffer(v.rxRing)
	return v
}

// RxSpace returns free receive-ring slots (QEMU consults before writing).
func (v *VNIC) RxSpace() int { return v.rxRing.FreePackets() }

// EnqueueRx adds QEMU-delivered packets to the receive ring.
func (v *VNIC) EnqueueRx(b Batch) {
	v.CountRx(b)
	v.CountDrop(v.rxRing.Enqueue(b)) // safety net; callers check RxSpace
}

// DequeueRx hands packets to the guest driver.
func (v *VNIC) DequeueRx(maxPackets int, maxBytes int64) []Batch {
	return v.rxRing.Dequeue(maxPackets, maxBytes)
}

// TxSpace returns free transmit-ring slots.
func (v *VNIC) TxSpace() int { return v.txRing.FreePackets() }

// EnqueueTx adds guest-transmitted packets to the transmit ring.
func (v *VNIC) EnqueueTx(b Batch) {
	v.CountTx(b)
	v.CountDrop(v.txRing.Enqueue(b))
}

// DequeueTx hands packets to QEMU's TAP transmit path.
func (v *VNIC) DequeueTx(maxPackets int, maxBytes int64) []Batch {
	return v.txRing.Dequeue(maxPackets, maxBytes)
}

// RxRingLen returns receive-ring occupancy.
func (v *VNIC) RxRingLen() int { return v.rxRing.Len() }

// TxRingLen returns transmit-ring occupancy.
func (v *VNIC) TxRingLen() int { return v.txRing.Len() }

// RxRingBytes returns receive-ring occupancy in bytes.
func (v *VNIC) RxRingBytes() int64 { return v.rxRing.Bytes() }

// TxRingBytes returns transmit-ring occupancy in bytes.
func (v *VNIC) TxRingBytes() int64 { return v.txRing.Bytes() }

// VNICDriver is the guest interrupt handler moving vNIC ring -> vCPU
// backlog. Like its host counterpart it is unbuffered; its cost is charged
// to the VM's vCPU grant.
type VNICDriver struct {
	Base
	CyclesPerPacket float64
	MembusFactor    float64
}

// NewVNICDriver builds the guest driver element.
func NewVNICDriver(id core.ElementID, cyclesPerPacket, membusFactor float64) *VNICDriver {
	return &VNICDriver{
		Base:            NewBase(id, core.KindVNICDriver),
		CyclesPerPacket: cyclesPerPacket,
		MembusFactor:    membusFactor,
	}
}

// VCPUBacklog is the guest's per-vCPU backlog queue.
type VCPUBacklog struct {
	Base
	q *Buffer
}

// NewVCPUBacklog builds the guest backlog.
func NewVCPUBacklog(id core.ElementID, capPackets int) *VCPUBacklog {
	b := &VCPUBacklog{
		Base: NewBase(id, core.KindVCPUBacklog),
		q:    NewBuffer(capPackets, 0),
	}
	b.AttachBuffer(b.q)
	return b
}

// Len returns queued packets.
func (b *VCPUBacklog) Len() int { return b.q.Len() }

// QueuedBytes returns queued bytes.
func (b *VCPUBacklog) QueuedBytes() int64 { return b.q.Bytes() }

// GuestNAPI is the guest softirq moving vCPU backlog -> guest socket.
type GuestNAPI struct {
	Base
	CyclesPerPacket float64
	MembusFactor    float64
}

// NewGuestNAPI builds the guest NAPI element.
func NewGuestNAPI(id core.ElementID, cyclesPerPacket, membusFactor float64) *GuestNAPI {
	return &GuestNAPI{
		Base:            NewBase(id, core.KindGuestNAPI),
		CyclesPerPacket: cyclesPerPacket,
		MembusFactor:    membusFactor,
	}
}

// GuestSocket is the guest kernel socket layer: a bounded receive buffer
// the middlebox software reads from (its input method) and a bounded send
// buffer it writes to (its output method). Receive overflow drops here —
// with flow feedback, so stream transports see the loss; send-side
// fullness is the WriteBlocked condition the middlebox experiences.
type GuestSocket struct {
	Base
	rxBuf *Buffer
	txBuf *Buffer
}

// NewGuestSocket builds the socket element with the given byte bounds.
func NewGuestSocket(id core.ElementID, rxBytes, txBytes int64) *GuestSocket {
	s := &GuestSocket{
		Base:  NewBase(id, core.KindGuestSocket),
		rxBuf: NewBuffer(0, rxBytes),
		txBuf: NewBuffer(0, txBytes),
	}
	s.AttachBuffer(s.rxBuf)
	return s
}

// DeliverRx lands traffic in the receive buffer; this is the flow's
// destination, so accepted traffic triggers the Delivered feedback.
func (s *GuestSocket) DeliverRx(b Batch) {
	if b.Empty() {
		return
	}
	over := s.rxBuf.Enqueue(b)
	acc := b
	acc.Packets -= over.Packets
	acc.Bytes -= over.Bytes
	s.CountRx(acc)
	acc.NotifyDelivered()
	s.CountDrop(over)
}

// RxAvailable returns readable bytes.
func (s *GuestSocket) RxAvailable() int64 { return s.rxBuf.Bytes() }

// RxFree returns free receive-buffer bytes (the receive window).
func (s *GuestSocket) RxFree() int64 { return s.rxBuf.FreeBytes() }

// Read removes up to maxBytes for the application (its input method).
func (s *GuestSocket) Read(maxBytes int64) []Batch {
	return s.rxBuf.Dequeue(-1, maxBytes)
}

// TxFree returns free send-buffer bytes; zero means the application's
// output method would block.
func (s *GuestSocket) TxFree() int64 { return s.txBuf.FreeBytes() }

// Write appends application output (its output method); the caller must
// respect TxFree, overflow is returned untouched.
func (s *GuestSocket) Write(b Batch) (accepted int64) {
	if b.Empty() {
		return 0
	}
	over := s.txBuf.Enqueue(b)
	acc := b.Bytes - over.Bytes
	s.CountTx(Batch{Packets: b.Packets - over.Packets, Bytes: acc})
	return acc
}

// DequeueTx hands application output to the guest transmit path.
func (s *GuestSocket) DequeueTx(maxPackets int, maxBytes int64) []Batch {
	return s.txBuf.Dequeue(maxPackets, maxBytes)
}

// TxQueued returns bytes waiting in the send buffer.
func (s *GuestSocket) TxQueued() int64 { return s.txBuf.Bytes() }
