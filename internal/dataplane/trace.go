package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"perfsight/internal/telemetry"
)

// DropEvent records one drop occurrence at an element.
type DropEvent struct {
	TSNS    int64 // virtual nanoseconds
	Element string
	Flow    FlowID
	Packets int
	Bytes   int64
}

// DropTracer keeps a bounded ring of recent drop events across a stack —
// the "which buffer, when, whose packets" detail behind the aggregate drop
// counters. It is an optional debugging aid in the spirit of §4.1's
// extensible statistics: attach it only when the overhead is acceptable.
// Safe for concurrent use.
type DropTracer struct {
	nowNS atomic.Int64

	mu     sync.Mutex
	ring   []DropEvent
	next   int
	filled bool
	total  int64
}

// NewDropTracer returns a tracer keeping the last capacity events.
func NewDropTracer(capacity int) *DropTracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &DropTracer{ring: make([]DropEvent, capacity)}
}

// SetNow updates the tracer's clock (the machine calls this every tick).
func (t *DropTracer) SetNow(ns int64) { t.nowNS.Store(ns) }

// Record logs a drop. Called from element CountDrop paths.
func (t *DropTracer) Record(element string, b Batch) {
	if t == nil || b.Empty() {
		return
	}
	ev := DropEvent{
		TSNS:    t.nowNS.Load(),
		Element: element,
		Flow:    b.Flow,
		Packets: b.Packets,
		Bytes:   b.Bytes,
	}
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events in chronological order.
func (t *DropTracer) Events() []DropEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		out := make([]DropEvent, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]DropEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// TotalEvents returns how many drops were recorded in total (including
// those that have rotated out of the ring).
func (t *DropTracer) TotalEvents() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Capacity returns the ring size actually in effect — callers that pass
// capacity <= 0 to NewDropTracer get the 1024 default, and this is how
// they find out.
func (t *DropTracer) Capacity() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Occupancy returns how many events the ring currently retains.
func (t *DropTracer) Occupancy() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		return len(t.ring)
	}
	return t.next
}

// RegisterMetrics exposes the tracer through a telemetry registry:
// cumulative event count plus ring occupancy/capacity gauges, labelled
// with the machine whose stack the tracer watches.
func (t *DropTracer) RegisterMetrics(reg *telemetry.Registry, machine string) {
	if t == nil || reg == nil {
		return
	}
	lbl := telemetry.Label{Key: "machine", Value: machine}
	reg.GaugeFunc("perfsight_dataplane_droptrace_events_total",
		"drop events recorded since the tracer attached (includes rotated-out events)",
		func() float64 { return float64(t.TotalEvents()) }, lbl)
	reg.GaugeFunc("perfsight_dataplane_droptrace_ring_occupancy",
		"drop events currently retained in the ring",
		func() float64 { return float64(t.Occupancy()) }, lbl)
	reg.GaugeFunc("perfsight_dataplane_droptrace_ring_capacity",
		"configured ring capacity (after the <=0 default is applied)",
		func() float64 { return float64(t.Capacity()) }, lbl)
}

// SiteSummary aggregates retained events per element.
type SiteSummary struct {
	Element       string
	Events        int
	Packets       int
	FirstNS       int64
	LastNS        int64
	DistinctFlows int
}

// Summary returns per-element aggregates, worst first.
func (t *DropTracer) Summary() []SiteSummary {
	events := t.Events()
	type acc struct {
		s     SiteSummary
		flows map[FlowID]bool
	}
	byElem := map[string]*acc{}
	for _, ev := range events {
		a := byElem[ev.Element]
		if a == nil {
			a = &acc{s: SiteSummary{Element: ev.Element, FirstNS: ev.TSNS}, flows: map[FlowID]bool{}}
			byElem[ev.Element] = a
		}
		a.s.Events++
		a.s.Packets += ev.Packets
		a.s.LastNS = ev.TSNS
		a.flows[ev.Flow] = true
	}
	out := make([]SiteSummary, 0, len(byElem))
	for _, a := range byElem {
		a.s.DistinctFlows = len(a.flows)
		out = append(out, a.s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Element < out[j].Element
	})
	return out
}

// String renders the summary for operators.
func (t *DropTracer) String() string {
	var b strings.Builder
	sums := t.Summary()
	fmt.Fprintf(&b, "drop trace: %d events recorded (ring %d/%d)\n",
		t.TotalEvents(), t.Occupancy(), t.Capacity())
	for _, s := range sums {
		fmt.Fprintf(&b, "  %-28s %6d pkts in %4d events, %d flow(s), t=[%.3fs, %.3fs]\n",
			s.Element, s.Packets, s.Events, s.DistinctFlows,
			float64(s.FirstNS)/1e9, float64(s.LastNS)/1e9)
	}
	return b.String()
}
