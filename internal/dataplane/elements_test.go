package dataplane

import (
	"sync"
	"testing"
	"time"

	"perfsight/internal/core"
)

// recordingFB captures flow feedback for assertions.
type recordingFB struct {
	mu        sync.Mutex
	delivered int64
	dropped   int64
	where     core.ElementID
}

func (r *recordingFB) Delivered(p int, b int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.delivered += b
}

func (r *recordingFB) Dropped(p int, b int64, where core.ElementID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropped += b
	r.where = where
}

func TestPNICAdmissionByLineRate(t *testing.T) {
	p := NewPNIC("m0/pnic", 8e6, 8e6, 10000, 1000) // 1 MB/s each way
	// Offer 2 MB in a 1 s tick against a 1 MB/s line: half drops.
	fb := &recordingFB{}
	p.OfferRx([]Batch{{Flow: "f", Packets: 2000, Bytes: 2e6, FB: fb}}, time.Second)
	if got := p.ES.Rx.Bytes.Load(); got != 1e6 {
		t.Fatalf("admitted %d bytes; want 1e6", got)
	}
	if got := p.ES.Drop.Bytes.Load(); got != 1e6 {
		t.Fatalf("dropped %d bytes; want 1e6", got)
	}
	if fb.dropped != 1e6 || fb.where != "m0/pnic" {
		t.Fatalf("flow feedback: %+v", fb)
	}
}

func TestPNICAdmissionByRingSpace(t *testing.T) {
	p := NewPNIC("m0/pnic", 8e9, 8e9, 10, 1000)
	p.OfferRx([]Batch{{Flow: "f", Packets: 25, Bytes: 2500}}, time.Second)
	if p.RxRingLen() != 10 {
		t.Fatalf("ring holds %d; want 10", p.RxRingLen())
	}
	if p.ES.Drop.Packets.Load() != 15 {
		t.Fatalf("dropped %d; want 15", p.ES.Drop.Packets.Load())
	}
}

func TestPNICTxDrainAtLineRate(t *testing.T) {
	p := NewPNIC("m0/pnic", 8e6, 8e6, 100, 1000)
	p.EnqueueTx(Batch{Flow: "f", Packets: 2000, Bytes: 2e6})
	out := p.DrainTx(time.Second)
	if SumBytes(out) != 1e6 {
		t.Fatalf("drained %d bytes; want 1e6 (line rate)", SumBytes(out))
	}
	if p.TxSpace() <= 0 {
		t.Fatal("tx space not freed")
	}
}

func TestDriverMovesRingToBacklog(t *testing.T) {
	p := NewPNIC("m0/pnic", 8e9, 8e9, 1000, 1000)
	d := NewPNICDriver("m0/pnic_driver", 1000, 0)
	set := NewBacklogSet("m0", 1, 300)
	p.OfferRx([]Batch{{Flow: "f", Packets: 100, Bytes: 10000}}, time.Second)
	cpu := NewCycleBudget(1e6)
	bus := NewMembusBudget(1 << 30)
	d.Move(p, set, cpu, bus)
	if set.TotalLen() != 100 {
		t.Fatalf("backlog holds %d; want 100", set.TotalLen())
	}
	if p.RxRingLen() != 0 {
		t.Fatal("ring not drained")
	}
	if cpu.Spent() != 100*1000 {
		t.Fatalf("cpu spent %v; want 1e5", cpu.Spent())
	}
}

func TestDriverBudgetLimits(t *testing.T) {
	p := NewPNIC("m0/pnic", 8e9, 8e9, 1000, 1000)
	d := NewPNICDriver("m0/pnic_driver", 1000, 0)
	set := NewBacklogSet("m0", 1, 300)
	p.OfferRx([]Batch{{Flow: "f", Packets: 100, Bytes: 10000}}, time.Second)
	d.Move(p, set, NewCycleBudget(40*1000), NewMembusBudget(1<<30))
	if set.TotalLen() != 40 {
		t.Fatalf("cpu-limited move got %d; want 40", set.TotalLen())
	}
	if p.RxRingLen() != 60 {
		t.Fatalf("ring keeps %d; want 60", p.RxRingLen())
	}
}

func TestDriverAllocFailDropsAtDriver(t *testing.T) {
	p := NewPNIC("m0/pnic", 8e9, 8e9, 1000, 1000)
	d := NewPNICDriver("m0/pnic_driver", 1000, 0)
	d.AllocFailRate = 0.5
	set := NewBacklogSet("m0", 1, 10000)
	p.OfferRx([]Batch{{Flow: "f", Packets: 100, Bytes: 10000}}, time.Second)
	d.Move(p, set, NewCycleBudget(1e9), NewMembusBudget(1<<30))
	if drops := d.ES.Drop.Packets.Load(); drops != 50 {
		t.Fatalf("driver dropped %d; want 50", drops)
	}
	if set.TotalLen() != 50 {
		t.Fatalf("backlog got %d; want 50", set.TotalLen())
	}
}

func TestBacklogOverflowDrops(t *testing.T) {
	q := NewBacklogQueue("m0/cpu0/backlog", 300)
	q.Enqueue(Batch{Flow: "f", Packets: 500, Bytes: 50000})
	if q.Len() != 300 {
		t.Fatalf("queue %d; want 300", q.Len())
	}
	if q.ES.Drop.Packets.Load() != 200 {
		t.Fatalf("drops %d; want 200", q.ES.Drop.Packets.Load())
	}
}

func TestBacklogSetHashStable(t *testing.T) {
	s := NewBacklogSet("m0", 4, 300)
	i1 := s.index("flow-a")
	for k := 0; k < 10; k++ {
		if s.index("flow-a") != i1 {
			t.Fatal("hash not stable")
		}
	}
	if len(s.Queues()) != 4 {
		t.Fatalf("queues = %d", len(s.Queues()))
	}
}

func TestBacklogSaturationAdmissionIsFair(t *testing.T) {
	q := NewBacklogQueue("m0/cpu0/backlog", 300)
	// Tick 1: flood overflows, small flow arrives after the drain hole.
	q.BeginTick()
	q.Enqueue(Batch{Flow: "flood", Packets: 700, Bytes: 70000})
	q.q.Dequeue(300, -1) // NAPI drains what it can
	q.CountTx(Batch{Packets: 300, Bytes: 30000})
	q.Enqueue(Batch{Flow: "small", Packets: 50, Bytes: 5000})

	// Tick 2: the queue is saturated; admission must hit both flows.
	q.BeginTick()
	dropsBefore := q.ES.Drop.Packets.Load()
	q.Enqueue(Batch{Flow: "flood", Packets: 700, Bytes: 70000})
	q.q.Dequeue(300, -1)
	q.CountTx(Batch{Packets: 300, Bytes: 30000})
	smallBefore := q.ES.Drop.Packets.Load()
	q.Enqueue(Batch{Flow: "small", Packets: 50, Bytes: 5000})
	smallDropped := q.ES.Drop.Packets.Load() - smallBefore
	if smallDropped == 0 {
		t.Fatal("small flow fully protected under saturation; want proportional loss")
	}
	if q.ES.Drop.Packets.Load() == dropsBefore {
		t.Fatal("no drops under sustained overflow")
	}
}

func TestVSwitchRules(t *testing.T) {
	v := NewVSwitch("m0/vswitch")
	v.InstallToVM("f1", "vm0")
	v.InstallToPNIC("f2")
	if r := v.Lookup("f1"); r == nil || r.Action != ActionToVM || r.VM != "vm0" {
		t.Fatalf("f1 rule: %+v", r)
	}
	if r := v.Lookup("f2"); r == nil || r.Action != ActionToPNIC {
		t.Fatalf("f2 rule: %+v", r)
	}
	if v.Lookup("missing") != nil {
		t.Fatal("phantom rule")
	}
	v.Remove("f1")
	if v.Lookup("f1") != nil {
		t.Fatal("rule not removed")
	}
	rules := v.Rules()
	if len(rules) != 1 || rules[0].Flow != "f2" {
		t.Fatalf("rules: %v", rules)
	}
}

func TestVSwitchPerRuleCounters(t *testing.T) {
	v := NewVSwitch("m0/vswitch")
	v.InstallToVM("f1", "vm0")
	r := v.Lookup("f1")
	v.Count(r, Batch{Packets: 3, Bytes: 300})
	if r.Packets.Load() != 3 || r.Bytes.Load() != 300 {
		t.Fatalf("rule counters: %d/%d", r.Packets.Load(), r.Bytes.Load())
	}
	if v.ES.Rx.Packets.Load() != 3 {
		t.Fatal("switch element counters not updated")
	}
}

func TestNAPIRoutesToTUNAndDropsUnmatched(t *testing.T) {
	set := NewBacklogSet("m0", 1, 300)
	v := NewVSwitch("m0/vswitch")
	nic := NewPNIC("m0/pnic", 8e9, 8e9, 1000, 1000)
	napi := NewNAPI("m0/napi", 1000, 0)
	tun := NewTUN("m0/vm0/tun", "vm0", 500)
	v.InstallToVM("good", "vm0")

	set.Enqueue(Batch{Flow: "good", Packets: 10, Bytes: 1000})
	set.Enqueue(Batch{Flow: "bad", Packets: 5, Bytes: 500})
	napi.Run(set, v, nic, map[core.VMID]*TUN{"vm0": tun}, NewCycleBudget(1e9), NewMembusBudget(1<<30))

	if tun.Len() != 10 {
		t.Fatalf("tun got %d; want 10", tun.Len())
	}
	if v.ES.Drop.Packets.Load() != 5 {
		t.Fatalf("unmatched drops %d; want 5", v.ES.Drop.Packets.Load())
	}
}

func TestNAPIHOLBlocksOnFullTxQueue(t *testing.T) {
	set := NewBacklogSet("m0", 1, 300)
	v := NewVSwitch("m0/vswitch")
	nic := NewPNIC("m0/pnic", 8e9, 8e9, 1000, 10) // tiny tx queue
	napi := NewNAPI("m0/napi", 1000, 0)
	v.InstallToPNIC("wire")

	set.Enqueue(Batch{Flow: "wire", Packets: 100, Bytes: 10000})
	napi.Run(set, v, nic, nil, NewCycleBudget(1e9), NewMembusBudget(1<<30))
	if set.TotalLen() != 90 {
		t.Fatalf("backlog should keep the HOL-blocked remainder: %d", set.TotalLen())
	}
	if nic.ES.Drop.Packets.Load() != 0 {
		t.Fatal("HOL-block must not drop at the NIC")
	}
}

func TestTUNDropsOnOverflowWithFeedback(t *testing.T) {
	tun := NewTUN("m0/vm0/tun", "vm0", 10)
	fb := &recordingFB{}
	tun.Write(Batch{Flow: "f", Packets: 25, Bytes: 2500, FB: fb})
	if tun.Len() != 10 {
		t.Fatalf("tun holds %d", tun.Len())
	}
	if tun.ES.Drop.Packets.Load() != 15 {
		t.Fatalf("drops %d; want 15", tun.ES.Drop.Packets.Load())
	}
	if fb.where != "m0/vm0/tun" {
		t.Fatalf("feedback location %s", fb.where)
	}
	got := tun.Read(5, -1)
	if SumPackets(got) != 5 || tun.Len() != 5 {
		t.Fatal("read accounting wrong")
	}
}

func TestHypervisorIORespectsVNICRate(t *testing.T) {
	tun := NewTUN("m0/vm0/tun", "vm0", 10000)
	vnic := NewVNIC("m0/vm0/guest/vnic", "vm0", 8e6, 100000) // 1 MB/s
	h := NewHypervisorIO("m0/vm0/qemu", "vm0", 100, 0)
	tun.Write(Batch{Flow: "f", Packets: 5000, Bytes: 5e6})
	h.MoveRx(tun, vnic, NewCycleBudget(1e12), NewMembusBudget(1<<40), time.Second)
	if got := vnic.RxRingBytes(); got != 1e6 {
		t.Fatalf("moved %d bytes; want 1e6 (vNIC line rate)", got)
	}
}

func TestHypervisorIOBackpressuresOnFullRing(t *testing.T) {
	tun := NewTUN("m0/vm0/tun", "vm0", 10000)
	vnic := NewVNIC("m0/vm0/guest/vnic", "vm0", 8e9, 10)
	h := NewHypervisorIO("m0/vm0/qemu", "vm0", 100, 0)
	tun.Write(Batch{Flow: "f", Packets: 100, Bytes: 10000})
	h.MoveRx(tun, vnic, NewCycleBudget(1e12), NewMembusBudget(1<<40), time.Second)
	if vnic.RxRingLen() != 10 {
		t.Fatalf("ring %d; want 10", vnic.RxRingLen())
	}
	if tun.Len() != 90 {
		t.Fatalf("tun should keep the rest: %d", tun.Len())
	}
	if vnic.ES.Drop.Packets.Load() != 0 {
		t.Fatal("backpressure must not drop")
	}
}

func TestGuestSocketDeliveryAndWindow(t *testing.T) {
	s := NewGuestSocket("m0/vm0/guest/socket", 1000, 500)
	fb := &recordingFB{}
	s.DeliverRx(Batch{Flow: "f", Packets: 2, Bytes: 800, FB: fb})
	if fb.delivered != 800 {
		t.Fatalf("delivered feedback %d", fb.delivered)
	}
	if s.RxFree() != 200 {
		t.Fatalf("rx free %d; want 200", s.RxFree())
	}
	s.DeliverRx(Batch{Flow: "f", Packets: 2, Bytes: 800, FB: fb})
	if fb.dropped == 0 {
		t.Fatal("overflow should notify drop")
	}
	got := s.Read(500)
	if SumBytes(got) == 0 || s.RxAvailable() >= 1000 {
		t.Fatal("read did not consume")
	}
}

func TestGuestSocketTxBounded(t *testing.T) {
	s := NewGuestSocket("m0/vm0/guest/socket", 1000, 300)
	if acc := s.Write(Batch{Flow: "f", Packets: 5, Bytes: 500}); acc != 300 {
		t.Fatalf("accepted %d; want 300", acc)
	}
	if s.TxFree() != 0 || s.TxQueued() != 300 {
		t.Fatalf("tx state free=%d queued=%d", s.TxFree(), s.TxQueued())
	}
	got := s.DequeueTx(-1, 100)
	if SumBytes(got) == 0 {
		t.Fatal("dequeue tx empty")
	}
}

func TestStackAssemblyAndSnapshotIdentity(t *testing.T) {
	cfg := DefaultStackConfig("m0", 4)
	s := NewStack(cfg)
	s.AddVM("vm0", 1e9)
	els := s.AllElements()
	seen := map[core.ElementID]bool{}
	for _, e := range els {
		if seen[e.ID()] {
			t.Fatalf("duplicate element %s", e.ID())
		}
		seen[e.ID()] = true
		rec := e.Snapshot(7)
		if rec.Element != e.ID() || rec.Timestamp != 7 {
			t.Fatalf("snapshot identity wrong for %s", e.ID())
		}
		if rec.Kind() != e.Kind() {
			t.Fatalf("%s kind attr %v != %v", e.ID(), rec.Kind(), e.Kind())
		}
	}
	if !seen["m0/vm0/tun"] || !seen["m0/pnic"] || !seen["m0/cpu3/backlog"] {
		t.Fatalf("missing expected elements: %v", seen)
	}
	s.RemoveVM("vm0")
	if len(s.AllElements()) != len(s.Elements()) {
		t.Fatal("VM elements not removed")
	}
}

func TestStackDuplicateVMPanics(t *testing.T) {
	s := NewStack(DefaultStackConfig("m0", 2))
	s.AddVM("vm0", 1e9)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddVM did not panic")
		}
	}()
	s.AddVM("vm0", 1e9)
}

func TestCycleBudget(t *testing.T) {
	b := NewCycleBudget(1000)
	if b.PacketsFor(100) != 10 {
		t.Fatalf("PacketsFor = %d", b.PacketsFor(100))
	}
	b.SpendPackets(5, 100)
	if b.Remaining() != 500 || b.Spent() != 500 {
		t.Fatalf("remaining %v spent %v", b.Remaining(), b.Spent())
	}
	if b.BytesFor(1) != 500 {
		t.Fatalf("BytesFor = %d", b.BytesFor(1))
	}
	b.SpendCycles(1e6)
	if !b.Exhausted() || b.Remaining() != 0 {
		t.Fatal("overdrawn budget not exhausted")
	}
	var nilB *CycleBudget
	if nilB.PacketsFor(1) <= 0 || nilB.Spent() != 0 {
		t.Fatal("nil budget should be unlimited and inert")
	}
}

func TestMembusBudgetSharedPool(t *testing.T) {
	pool := NewMembusBudget(1000)
	a := pool.Child(800)
	b := pool.Child(800)
	if a.WireBytesFor(1) != 800 {
		t.Fatalf("child sees %d", a.WireBytesFor(1))
	}
	a.SpendWireBytes(700, 1)
	// Pool has 300 left; b's own cap is 800 but pool limits it.
	if got := b.WireBytesFor(1); got != 300 {
		t.Fatalf("second child sees %d; want 300 (pool-limited)", got)
	}
	b.SpendWireBytes(300, 1)
	if pool.Remaining() != 0 {
		t.Fatalf("pool remaining %d", pool.Remaining())
	}
	if a.WireBytesFor(1) != 0 {
		t.Fatal("exhausted pool still grants")
	}
}

func TestMembusBudgetFactorConversion(t *testing.T) {
	m := NewMembusBudget(180)
	if m.WireBytesFor(18) != 10 {
		t.Fatalf("WireBytesFor(18) = %d; want 10", m.WireBytesFor(18))
	}
	m.SpendWireBytes(10, 18)
	if m.Remaining() != 0 {
		t.Fatalf("remaining %d", m.Remaining())
	}
}
