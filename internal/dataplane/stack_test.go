package dataplane

import (
	"testing"
	"time"

	"perfsight/internal/core"
)

// buildStack returns a small stack with one VM and a route to it.
func buildStack(t *testing.T) (*Stack, *VMStack) {
	t.Helper()
	cfg := DefaultStackConfig("m0", 2)
	s := NewStack(cfg)
	vm := s.AddVM("vm0", 1e9)
	s.VSwitch.InstallToVM("f", "vm0")
	return s, vm
}

func bigCPU() *CycleBudget     { return NewCycleBudget(1e12) }
func bigBus() *MembusBudget    { return NewMembusBudget(1 << 40) }
func rxBatch(pkts int) []Batch { return []Batch{{Flow: "f", Packets: pkts, Bytes: int64(pkts) * 1448}} }

// TestRxPipelinePhases walks one packet burst through every receive stage
// explicitly: pNIC ring -> backlog -> vswitch -> TUN -> vNIC -> guest
// backlog -> guest socket.
func TestRxPipelinePhases(t *testing.T) {
	s, vm := buildStack(t)

	s.OfferRx(rxBatch(50), time.Millisecond)
	if s.PNic.RxRingLen() != 50 {
		t.Fatalf("ring: %d", s.PNic.RxRingLen())
	}

	s.RunHostSoftirq(bigCPU(), bigBus())
	if s.PNic.RxRingLen() != 0 {
		t.Fatal("ring not drained by softirq")
	}
	if vm.Tun.Len() != 50 {
		t.Fatalf("TUN: %d; want 50", vm.Tun.Len())
	}
	if got := s.VSwitch.Lookup("f").Packets.Load(); got != 50 {
		t.Fatalf("rule counter: %d", got)
	}

	s.RunQemuRx("vm0", bigCPU(), bigBus(), time.Millisecond)
	if vm.Tun.Len() != 0 || vm.VNic.RxRingLen() != 50 {
		t.Fatalf("qemu rx: tun=%d ring=%d", vm.Tun.Len(), vm.VNic.RxRingLen())
	}

	// GuestRx drains downstream-first (backlog->socket before ring->
	// backlog), so the two-hop move completes over two invocations, as it
	// does across machine ticks.
	vm.GuestRx(bigCPU(), bigBus())
	vm.GuestRx(bigCPU(), bigBus())
	if vm.Socket.RxAvailable() != 50*1448 {
		t.Fatalf("socket: %d bytes", vm.Socket.RxAvailable())
	}
	// Every element along the path must have counted the burst.
	for _, e := range []core.Element{s.PNic, s.Driver, s.Napi, vm.Qemu, vm.Driver, vm.GuestNapi} {
		rec := e.Snapshot(0)
		if rec.GetOr(core.AttrRxPackets, 0) != 50 {
			t.Errorf("%s rx = %v; want 50", e.ID(), rec.GetOr(core.AttrRxPackets, 0))
		}
	}
}

// TestTxPipelinePhases walks the reverse path: socket send buffer -> vNIC
// tx ring -> TAP/backlog -> vswitch -> pNIC -> wire.
func TestTxPipelinePhases(t *testing.T) {
	s, vm := buildStack(t)
	s.VSwitch.InstallToPNIC("out")

	if acc := vm.Socket.Write(Batch{Flow: "out", Packets: 20, Bytes: 20 * 1448, Egress: true}); acc != 20*1448 {
		t.Fatalf("socket write accepted %d", acc)
	}
	vm.GuestTx(bigCPU(), bigBus())
	if vm.VNic.TxRingLen() != 20 {
		t.Fatalf("vNIC tx ring: %d", vm.VNic.TxRingLen())
	}
	s.RunQemuTx("vm0", bigCPU(), bigBus(), time.Millisecond)
	if s.Backlogs.TotalLen() != 20 {
		t.Fatalf("backlog after TAP transmit: %d", s.Backlogs.TotalLen())
	}
	s.RunHostSoftirq(bigCPU(), bigBus())
	out := s.DrainTx(time.Millisecond)
	if SumPackets(out) != 20 {
		t.Fatalf("wire: %d packets", SumPackets(out))
	}
}

// TestSoftirqBudgetBackpressure: with a tiny softirq budget the burst
// stays queued (ring or backlog) rather than vanishing, and repeated
// budgeted passes make steady progress.
func TestSoftirqBudgetBackpressure(t *testing.T) {
	s, vm := buildStack(t)
	s.OfferRx(rxBatch(100), time.Millisecond)
	costs := s.Cfg.Costs
	perRound := 10 * (costs.DriverCyclesPerPkt + costs.NAPICyclesPerPkt)
	for round := 0; round < 5; round++ {
		s.RunHostSoftirq(NewCycleBudget(perRound), bigBus())
		moved := vm.Tun.Len()
		left := s.PNic.RxRingLen() + s.Backlogs.TotalLen()
		if moved+left != 100 {
			t.Fatalf("round %d: packets lost: moved %d, left %d", round, moved, left)
		}
	}
	if vm.Tun.Len() == 0 {
		t.Fatal("no progress across budgeted rounds")
	}
	if vm.Tun.Len() >= 100 {
		// 5 rounds of ~10-packet budgets cannot move everything through
		// both stages; if it did, the budget was ignored.
		t.Fatalf("budget ignored: moved %d", vm.Tun.Len())
	}
}

// TestInjectToVM bypasses the pNIC path (host-originated traffic).
func TestInjectToVM(t *testing.T) {
	s, vm := buildStack(t)
	s.InjectToVM("vm0", Batch{Flow: "mgmt", Packets: 3, Bytes: 300})
	if vm.Tun.Len() != 3 {
		t.Fatalf("TUN: %d", vm.Tun.Len())
	}
	s.InjectToVM("ghost", Batch{Flow: "mgmt", Packets: 3, Bytes: 300}) // no panic
}

// TestCostScales verifies SetCostScales reaches every I/O element.
func TestCostScales(t *testing.T) {
	s, vm := buildStack(t)
	s.SetCostScales(2.5, 7.0)
	if s.Driver.CostScale != 2.5 || s.Napi.CostScale != 2.5 {
		t.Fatal("softirq scale not applied")
	}
	if vm.Qemu.CostScale != 7.0 {
		t.Fatal("qemu scale not applied")
	}
	// Inflated cost must consume proportionally more budget.
	s.OfferRx(rxBatch(10), time.Millisecond)
	cpu := bigCPU()
	s.RunHostSoftirq(cpu, bigBus())
	costs := s.Cfg.Costs
	want := 10 * 2.5 * (costs.DriverCyclesPerPkt + costs.NAPICyclesPerPkt)
	if got := cpu.Spent(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("softirq spent %v; want ~%v", got, want)
	}
}

// TestKernelBehind flags a backed-up vNIC ring.
func TestKernelBehind(t *testing.T) {
	s, vm := buildStack(t)
	if vm.KernelBehind() {
		t.Fatal("fresh VM already behind")
	}
	// Keep feeding while the guest never runs: the vNIC ring backs up.
	for i := 0; i < 8 && !vm.KernelBehind(); i++ {
		s.OfferRx(rxBatch(300), time.Millisecond)
		s.RunHostSoftirq(bigCPU(), bigBus())
		s.RunQemuRx("vm0", bigCPU(), bigBus(), time.Second)
	}
	if !vm.KernelBehind() {
		t.Fatalf("ring %d of %d not flagged", vm.VNic.RxRingLen(), s.Cfg.VNICRing)
	}
}
