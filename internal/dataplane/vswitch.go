package dataplane

import (
	"sort"
	"sync"
	"sync/atomic"

	"perfsight/internal/core"
	"perfsight/internal/stats"
)

// ActionKind is what the virtual switch does with a matched flow.
type ActionKind int

const (
	// ActionDrop discards the flow (default for unmatched traffic).
	ActionDrop ActionKind = iota
	// ActionToVM outputs to the TUN socket queue of a local VM.
	ActionToVM
	// ActionToPNIC outputs to the physical NIC transmit queue.
	ActionToPNIC
)

// Rule is one flow-table entry with its own statistics, mirroring Open
// vSwitch per-rule counters fetched over the OpenFlow control channel.
type Rule struct {
	Flow   FlowID
	Action ActionKind
	VM     core.VMID // for ActionToVM

	Packets stats.Counter
	Bytes   stats.Counter
}

// VSwitch models the Open vSwitch datapath: a flow table consulted by the
// NAPI routine's frame-handling callback. The switch itself is unbuffered —
// a function call between elements — so its only drops are policy drops
// (unmatched traffic).
type VSwitch struct {
	Base
	mu    sync.RWMutex
	rules map[FlowID]*Rule

	// flows, when non-nil, summarizes per-flow traffic in constant memory
	// (count-min + top-k) instead of relying on per-rule enumeration.
	// Loaded without the rule-table lock: it is set before traffic starts.
	flows atomic.Pointer[FlowSketch]
}

// NewVSwitch builds an empty switch.
func NewVSwitch(id core.ElementID) *VSwitch {
	return &VSwitch{
		Base:  NewBase(id, core.KindVSwitch),
		rules: make(map[FlowID]*Rule),
	}
}

// Install adds or replaces the rule for a flow.
func (v *VSwitch) Install(flow FlowID, action ActionKind, vm core.VMID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.rules[flow] = &Rule{Flow: flow, Action: action, VM: vm}
}

// InstallToVM routes a flow to a local VM's TUN.
func (v *VSwitch) InstallToVM(flow FlowID, vm core.VMID) { v.Install(flow, ActionToVM, vm) }

// InstallToPNIC routes a flow out the physical NIC.
func (v *VSwitch) InstallToPNIC(flow FlowID) { v.Install(flow, ActionToPNIC, "") }

// Remove deletes a flow's rule.
func (v *VSwitch) Remove(flow FlowID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.rules, flow)
}

// Lookup returns the rule for a flow (nil if unmatched).
func (v *VSwitch) Lookup(flow FlowID) *Rule {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.rules[flow]
}

// EnableFlowSketch switches the element to sketch-based flow statistics:
// Count feeds every batch into a constant-memory count-min + top-k
// summary. Call before traffic starts.
func (v *VSwitch) EnableFlowSketch(cfg SketchConfig) *FlowSketch {
	fs := NewFlowSketch(cfg)
	v.flows.Store(fs)
	return fs
}

// FlowStats returns the sketch, or nil when running in legacy exact mode.
func (v *VSwitch) FlowStats() *FlowSketch { return v.flows.Load() }

// Count records a batch processed under rule r.
func (v *VSwitch) Count(r *Rule, b Batch) {
	r.Packets.Add(uint64(b.Packets))
	r.Bytes.Add(uint64(b.Bytes))
	if fs := v.flows.Load(); fs != nil {
		fs.Update(r.Flow, uint64(b.Packets), uint64(b.Bytes))
	}
	v.CountRx(b)
	v.CountTx(b)
}

// DropUnmatched records a policy drop.
func (v *VSwitch) DropUnmatched(b Batch) {
	v.CountRx(b)
	v.CountDrop(b)
}

// Rules returns the flow table sorted by flow ID (for the OVS channel
// adapter and tests).
func (v *VSwitch) Rules() []*Rule {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*Rule, 0, len(v.rules))
	for _, r := range v.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}
