// Package operator builds the cloud-operator workflow of §7.3 and the
// scalability note of §7.4 on top of the diagnosis applications:
//
//   - Ticket aggregation: tenants submit trouble tickets; the operator
//     diagnoses each tenant's virtual network and correlates the reports.
//     Tickets whose implicated elements overlap on shared machines are one
//     infrastructure problem, not many tenant problems ("cloud operators
//     can aggregate tenants' tickets to diagnose if they have elements
//     overlapping with each other").
//   - The advisor: every diagnosis maps to a concrete remediation — the
//     §2.2 taxonomy assigns each root-cause class an owner and a fix
//     (tenant redeploys a larger VM; operator migrates contending work;
//     tenant scales a bottleneck middlebox out; tenant reloads buggy
//     software).
package operator

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
)

// Ticket is one tenant's complaint plus the diagnosis PerfSight ran for it.
type Ticket struct {
	Tenant core.TenantID
	// Stack is the Algorithm 1 report (nil if not run).
	Stack *diagnosis.ContentionReport
	// Chain is the Algorithm 2 report (nil if the tenant has no chains).
	Chain *diagnosis.RootCauseReport
}

// Diagnose opens a ticket for a tenant by running both diagnostic
// applications over window T. Either application may be inapplicable
// (no stack elements assigned, or no middleboxes); the ticket carries
// whatever succeeded.
func Diagnose(ctl *controller.Controller, tenant core.TenantID, T time.Duration) (Ticket, error) {
	t := Ticket{Tenant: tenant}
	stack, serr := diagnosis.FindContentionAndBottleneck(ctl, tenant, T)
	if serr == nil {
		t.Stack = stack
	}
	chain, cerr := diagnosis.LocateRootCause(ctl, tenant, T)
	if cerr == nil {
		t.Chain = chain
	}
	if serr != nil && cerr != nil {
		return t, fmt.Errorf("operator: tenant %s: %v; %v", tenant, serr, cerr)
	}
	return t, nil
}

// Action enumerates the remediations of §2.2/§7.3.
type Action int

const (
	ActionNone Action = iota
	// ActionMigrateInterference: operator moves contending work off the
	// machine (the §7.3 management-task migration).
	ActionMigrateInterference
	// ActionResizeVM: tenant redeploys the bottleneck VM with a larger
	// allocation (§2.2 "the tenant can redeploy the middlebox in a
	// 'larger' VM").
	ActionResizeVM
	// ActionScaleOut: tenant adds another instance of the overloaded
	// middlebox and splits traffic (the §7.3 load-balancer scale-out).
	ActionScaleOut
	// ActionReloadSoftware: the root cause shows a performance bug; the
	// tenant reloads the VM with a suitable software version (§2.2).
	ActionReloadSoftware
	// ActionAddCapacity: the physical NIC itself is the shortage; the
	// operator must re-place tenants or add bandwidth.
	ActionAddCapacity
	// ActionThrottleSource: the chain is underloaded — the problem is the
	// traffic source, not the dataplane.
	ActionThrottleSource
)

var actionNames = map[Action]string{
	ActionNone:                "no-action",
	ActionMigrateInterference: "migrate-interfering-workload",
	ActionResizeVM:            "resize-vm",
	ActionScaleOut:            "scale-out-middlebox",
	ActionReloadSoftware:      "reload-software",
	ActionAddCapacity:         "add-nic-capacity",
	ActionThrottleSource:      "source-underloaded",
}

func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Owner says who must act (§2.2: bottlenecks are the tenant's to fix,
// contention usually requires the operator).
type Owner int

const (
	OwnerNobody Owner = iota
	OwnerTenant
	OwnerOperator
)

func (o Owner) String() string {
	switch o {
	case OwnerTenant:
		return "tenant"
	case OwnerOperator:
		return "operator"
	}
	return "nobody"
}

// Recommendation is one advised remediation.
type Recommendation struct {
	Action Action
	Owner  Owner
	// Target is the element or VM the action applies to, if any.
	Target core.ElementID
	Reason string
}

func (r Recommendation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", r.Owner, r.Action)
	if r.Target != "" {
		fmt.Fprintf(&b, " target=%s", r.Target)
	}
	if r.Reason != "" {
		fmt.Fprintf(&b, " — %s", r.Reason)
	}
	return b.String()
}

// Advise maps a ticket's diagnoses to remediations.
func Advise(t Ticket) []Recommendation {
	var recs []Recommendation

	if s := t.Stack; s != nil && s.TotalLoss > 0 {
		switch s.Scope {
		case diagnosis.ScopeBottleneck:
			recs = append(recs, Recommendation{
				Action: ActionResizeVM,
				Owner:  OwnerTenant,
				Target: core.ElementID(s.BottleneckVM),
				Reason: fmt.Sprintf("loss confined to %s's datapath (%s)", s.BottleneckVM, s.Inferred),
			})
		case diagnosis.ScopeContention:
			switch s.Inferred {
			case diagnosis.ResourceIncomingBandwidth, diagnosis.ResourceOutgoingBandwidth:
				recs = append(recs, Recommendation{
					Action: ActionAddCapacity,
					Owner:  OwnerOperator,
					Reason: fmt.Sprintf("pNIC is the shortage (%s)", s.Inferred),
				})
			default:
				recs = append(recs, Recommendation{
					Action: ActionMigrateInterference,
					Owner:  OwnerOperator,
					Reason: fmt.Sprintf("%s contention at %s across VMs %v",
						s.Inferred, s.TopLocation, s.DroppingVMs),
				})
			}
		}
	}

	if c := t.Chain; c != nil {
		// Scale-out advice only makes sense when something in the chain is
		// actually distressed: at least one blocked member (propagation
		// pruned down to the cause) or an Overloaded label. A chain whose
		// members are all Normal is healthy, however many candidates remain.
		anyBlocked := false
		for _, m := range c.Metrics {
			if m.State != diagnosis.StateNormal {
				anyBlocked = true
				break
			}
		}
		switch {
		case c.SourceUnderloaded:
			recs = append(recs, Recommendation{
				Action: ActionThrottleSource,
				Owner:  OwnerNobody,
				Reason: "every middlebox is ReadBlocked; the traffic source is underloaded",
			})
		case !anyBlocked:
			// Healthy chain: nothing to remediate.
		default:
			for _, id := range c.RootCauses {
				m := c.Metrics[id]
				action := ActionScaleOut
				reason := "unblocked middlebox saturated while neighbours are blocked"
				if !c.Overloaded[id] {
					reason = "remaining candidate after pruning blocked chains"
				}
				// Both Overloaded-by-load and buggy middleboxes surface the
				// same way; the advisor recommends scale-out first and a
				// software reload if scale-out does not restore throughput.
				recs = append(recs, Recommendation{
					Action: action,
					Owner:  OwnerTenant,
					Target: id,
					Reason: fmt.Sprintf("%s (b/t_in %.0f Mbps, b/t_out %.0f Mbps)",
						reason, m.InRateBps/1e6, m.OutRateBps/1e6),
				})
			}
		}
	}

	if len(recs) == 0 {
		recs = append(recs, Recommendation{Action: ActionNone, Owner: OwnerNobody,
			Reason: "no loss and no blocked middleboxes observed"})
	}
	return recs
}

// AggregateVerdict classifies a set of tickets.
type AggregateVerdict int

const (
	// VerdictIndependent: tickets implicate disjoint elements — each is a
	// separate tenant-local problem.
	VerdictIndependent AggregateVerdict = iota
	// VerdictSharedInfrastructure: several tenants' tickets implicate the
	// same machine's shared elements — one infrastructure problem.
	VerdictSharedInfrastructure
)

func (v AggregateVerdict) String() string {
	if v == VerdictSharedInfrastructure {
		return "shared-infrastructure"
	}
	return "independent"
}

// Aggregate is the cross-tenant correlation of §7.4.
type Aggregate struct {
	Verdict AggregateVerdict
	// Hotspots lists elements implicated by more than one tenant, with the
	// tenants naming them.
	Hotspots map[core.ElementID][]core.TenantID
	// Machines ranks machines by how many tenants implicated them.
	Machines map[core.MachineID]int
}

// String renders an operator summary.
func (a *Aggregate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict: %s", a.Verdict)
	if len(a.Hotspots) > 0 {
		ids := make([]core.ElementID, 0, len(a.Hotspots))
		for id := range a.Hotspots {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		b.WriteString("; hotspots:")
		for _, id := range ids {
			fmt.Fprintf(&b, " %s(tenants %v)", id, a.Hotspots[id])
		}
	}
	return b.String()
}

// implicated returns the elements a ticket blames: the top loss elements
// of the stack report plus any chain root causes.
func implicated(t Ticket) []core.ElementID {
	var out []core.ElementID
	if s := t.Stack; s != nil && s.TotalLoss > 0 {
		for _, e := range s.Ranked {
			if e.Loss > 0 {
				out = append(out, e.Element)
			}
		}
	}
	if c := t.Chain; c != nil {
		out = append(out, c.RootCauses...)
	}
	return out
}

// AggregateTickets correlates tenants' tickets: when two or more tenants
// implicate elements on the same machine's shared stack (or literally the
// same element), the problem is infrastructure-level.
func AggregateTickets(tickets []Ticket) *Aggregate {
	agg := &Aggregate{
		Hotspots: make(map[core.ElementID][]core.TenantID),
		Machines: make(map[core.MachineID]int),
	}
	byElement := make(map[core.ElementID][]core.TenantID)
	machineTenants := make(map[core.MachineID]map[core.TenantID]bool)

	for _, t := range tickets {
		seenMachines := map[core.MachineID]bool{}
		for _, id := range implicated(t) {
			byElement[id] = append(byElement[id], t.Tenant)
			m := id.Machine()
			if !seenMachines[m] {
				seenMachines[m] = true
				if machineTenants[m] == nil {
					machineTenants[m] = map[core.TenantID]bool{}
				}
				machineTenants[m][t.Tenant] = true
			}
		}
	}

	for id, tenants := range byElement {
		if len(uniqueTenants(tenants)) > 1 {
			agg.Hotspots[id] = uniqueTenants(tenants)
		}
	}
	for m, tenants := range machineTenants {
		agg.Machines[m] = len(tenants)
		if len(tenants) > 1 {
			agg.Verdict = VerdictSharedInfrastructure
		}
	}
	for id := range agg.Hotspots {
		_ = id
		agg.Verdict = VerdictSharedInfrastructure
	}
	return agg
}

func uniqueTenants(in []core.TenantID) []core.TenantID {
	seen := map[core.TenantID]bool{}
	var out []core.TenantID
	for _, t := range in {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
