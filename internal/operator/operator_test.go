package operator

import (
	"strings"
	"testing"

	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
)

func stackReport(scope diagnosis.Scope, res diagnosis.Resource, vm core.VMID, elems ...core.ElementID) *diagnosis.ContentionReport {
	rep := &diagnosis.ContentionReport{
		Scope:        scope,
		Inferred:     res,
		BottleneckVM: vm,
		TotalLoss:    100,
	}
	for _, e := range elems {
		rep.Ranked = append(rep.Ranked, diagnosis.ElementLoss{Element: e, Loss: 50})
	}
	return rep
}

func TestAdviseBottleneckResizesVM(t *testing.T) {
	tkt := Ticket{
		Tenant: "t1",
		Stack:  stackReport(diagnosis.ScopeBottleneck, diagnosis.ResourceVMBottleneck, "vm1", "m0/vm1/tun"),
	}
	recs := Advise(tkt)
	if len(recs) != 1 || recs[0].Action != ActionResizeVM || recs[0].Owner != OwnerTenant {
		t.Fatalf("recs: %v", recs)
	}
}

func TestAdviseContentionMigrates(t *testing.T) {
	tkt := Ticket{
		Tenant: "t1",
		Stack:  stackReport(diagnosis.ScopeContention, diagnosis.ResourceMemoryBandwidth, "", "m0/vm0/tun", "m0/vm1/tun"),
	}
	recs := Advise(tkt)
	if recs[0].Action != ActionMigrateInterference || recs[0].Owner != OwnerOperator {
		t.Fatalf("recs: %v", recs)
	}
}

func TestAdviseNICShortageAddsCapacity(t *testing.T) {
	tkt := Ticket{
		Tenant: "t1",
		Stack:  stackReport(diagnosis.ScopeContention, diagnosis.ResourceIncomingBandwidth, "", "m0/pnic"),
	}
	recs := Advise(tkt)
	if recs[0].Action != ActionAddCapacity {
		t.Fatalf("recs: %v", recs)
	}
}

func TestAdviseChainRootCauseScalesOut(t *testing.T) {
	tkt := Ticket{
		Tenant: "t1",
		Chain: &diagnosis.RootCauseReport{
			RootCauses: []core.ElementID{"m0/vm-lb/app"},
			Overloaded: map[core.ElementID]bool{"m0/vm-lb/app": true},
			Metrics: map[core.ElementID]diagnosis.MBMetrics{
				"m0/vm-lb/app": {InRateBps: 200e6, OutRateBps: 30e6},
				// The upstream proxy is visibly stalled on it.
				"m0/vm-up/app": {State: diagnosis.StateWriteBlocked},
			},
		},
	}
	recs := Advise(tkt)
	if len(recs) != 1 || recs[0].Action != ActionScaleOut || recs[0].Target != "m0/vm-lb/app" {
		t.Fatalf("recs: %v", recs)
	}
	if !strings.Contains(recs[0].String(), "scale-out") {
		t.Fatalf("rendering: %s", recs[0])
	}
}

func TestAdviseUnderloadedSource(t *testing.T) {
	tkt := Ticket{
		Tenant: "t1",
		Chain:  &diagnosis.RootCauseReport{SourceUnderloaded: true},
	}
	recs := Advise(tkt)
	if recs[0].Action != ActionThrottleSource || recs[0].Owner != OwnerNobody {
		t.Fatalf("recs: %v", recs)
	}
}

func TestAdviseHealthyTicket(t *testing.T) {
	recs := Advise(Ticket{Tenant: "t1", Stack: &diagnosis.ContentionReport{}})
	if len(recs) != 1 || recs[0].Action != ActionNone {
		t.Fatalf("recs: %v", recs)
	}
}

func TestAggregateIndependentTickets(t *testing.T) {
	agg := AggregateTickets([]Ticket{
		{Tenant: "t1", Stack: stackReport(diagnosis.ScopeBottleneck, diagnosis.ResourceVMBottleneck, "vm1", "m0/vm1/tun")},
		{Tenant: "t2", Stack: stackReport(diagnosis.ScopeBottleneck, diagnosis.ResourceVMBottleneck, "vm9", "m3/vm9/tun")},
	})
	if agg.Verdict != VerdictIndependent {
		t.Fatalf("verdict %v; want independent (%s)", agg.Verdict, agg)
	}
	if len(agg.Hotspots) != 0 {
		t.Fatalf("hotspots: %v", agg.Hotspots)
	}
}

func TestAggregateSharedMachine(t *testing.T) {
	agg := AggregateTickets([]Ticket{
		{Tenant: "t1", Stack: stackReport(diagnosis.ScopeContention, diagnosis.ResourceMemoryBandwidth, "", "m0/vm1/tun")},
		{Tenant: "t2", Stack: stackReport(diagnosis.ScopeContention, diagnosis.ResourceMemoryBandwidth, "", "m0/vm7/tun")},
	})
	if agg.Verdict != VerdictSharedInfrastructure {
		t.Fatalf("verdict %v; want shared (%s)", agg.Verdict, agg)
	}
	if agg.Machines["m0"] != 2 {
		t.Fatalf("machine count: %v", agg.Machines)
	}
}

func TestAggregateSharedElementHotspot(t *testing.T) {
	agg := AggregateTickets([]Ticket{
		{Tenant: "t1", Stack: stackReport(diagnosis.ScopeContention, diagnosis.ResourcePCPUBacklog, "", "m0/cpu0/backlog")},
		{Tenant: "t2", Stack: stackReport(diagnosis.ScopeContention, diagnosis.ResourcePCPUBacklog, "", "m0/cpu0/backlog")},
	})
	tenants := agg.Hotspots["m0/cpu0/backlog"]
	if len(tenants) != 2 {
		t.Fatalf("hotspot tenants: %v", tenants)
	}
	if !strings.Contains(agg.String(), "m0/cpu0/backlog") {
		t.Fatalf("summary: %s", agg)
	}
}

func TestActionAndOwnerNames(t *testing.T) {
	for a := ActionNone; a <= ActionThrottleSource; a++ {
		if strings.HasPrefix(a.String(), "action(") {
			t.Fatalf("unnamed action %d", int(a))
		}
	}
	if OwnerTenant.String() != "tenant" || OwnerOperator.String() != "operator" {
		t.Fatal("owner names")
	}
}
