// Command perfsight-agent runs a PerfSight agent for one (simulated)
// physical server and serves statistics to controllers over TCP.
//
// The agent hosts a live software dataplane: a testbed-like machine with a
// configurable number of middlebox VMs forwarding client traffic, advanced
// in real time. Controllers (cmd/perfsight-controller) connect with the
// wire protocol and query any element. A fault can be injected at runtime
// via -fault to give diagnosers something to find:
//
//	perfsight-agent -listen :7700 -machine m0 -vms 4 -fault membw@30s
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7700", "TCP address to serve controllers on")
	machineID := flag.String("machine", "m0", "machine identity")
	vms := flag.Int("vms", 4, "middlebox VMs to host")
	rate := flag.Float64("rate-mbps", 200, "offered client load per VM, Mbit/s")
	fault := flag.String("fault", "", "inject a fault: membw@DUR, cpu@DUR, vmcpu@DUR, rxflood@DUR (e.g. membw@30s)")
	telemetryAddr := flag.String("telemetry", "", "serve self-metrics (/metrics, /healthz) on this address, e.g. :9100 (empty = disabled)")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "close controller connections idle beyond this, so half-open peers cannot park handler goroutines (0 = never)")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent controller connections; extras are refused at accept (0 = unlimited)")
	codec := flag.String("codec", wire.CodecV2, "wire codecs offered to controllers: v2 (binary, with JSON fallback per connection) or json (JSON only)")
	delta := flag.Bool("delta", true, "permit delta-encoded responses on v2 connections that request them (changed attrs only)")
	push := flag.Bool("push", true, "grant push streaming to controllers that request it (delta frames at adaptive cadence; controllers without it keep pulling)")
	spansFlag := flag.Bool("spans", true, "grant trace spans to v2 controllers that request them (per-channel gather spans piggybacked on responses and push frames)")
	cadenceMin := flag.Duration("cadence-min", agent.DefaultCadenceMin, "fastest push cadence this agent will stream at, whatever the controller asks for")
	cadenceMax := flag.Duration("cadence-max", agent.DefaultCadenceMax, "slowest push cadence the stream decays to while counters are quiescent")
	pprofFlag := flag.Bool("pprof", false, "expose Go profiling endpoints (/debug/pprof/*) on the -telemetry address")
	flowStats := flag.String("flow-stats", "sketch", "per-flow statistics mode: sketch (constant-memory count-min + top-k summary) or exact (legacy per-rule enumeration, O(flows) attrs)")
	sketchWidth := flag.Int("sketch-width", 0, "count-min sketch counters per row (0 = default 4096; error bound ε = e/width)")
	sketchDepth := flag.Int("sketch-depth", 0, "count-min sketch rows (0 = default 4; confidence 1−e^−depth)")
	sketchTopK := flag.Int("sketch-topk", 0, "heavy-hitter table capacity (0 = default 64)")
	flag.Parse()
	if *codec != wire.CodecV2 && *codec != wire.CodecJSON {
		log.Fatalf("bad -codec %q (want v2 or json)", *codec)
	}
	flowMode, err := agent.FlowStatsModeFromString(*flowStats)
	if err != nil {
		log.Fatalf("bad -flow-stats: %v", err)
	}

	mid := core.MachineID(*machineID)
	c := cluster.New(time.Millisecond)
	m := c.AddMachine(machine.DefaultConfig(mid))

	for i := 0; i < *vms; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		appID := core.ElementID(fmt.Sprintf("%s/%s/app", mid, vm))
		host := c.AddHost(fmt.Sprintf("client%d", i), 0)
		c.AddHost(fmt.Sprintf("server%d", i), 0)
		out := c.Connect(flowID(fmt.Sprintf("out-%d", i)),
			cluster.VMEndpoint(mid, vm), cluster.HostEndpoint(fmt.Sprintf("server%d", i)), stream.Config{})
		proxy := middlebox.NewProxy(appID, 1e9, middlebox.ConnOutput{C: out})
		c.PlaceVM(mid, vm, 1.0, 1e9, proxy)
		for j := 0; j < 4; j++ {
			in := c.Connect(flowID(fmt.Sprintf("in-%d-%d", i, j)),
				cluster.HostEndpoint(fmt.Sprintf("client%d", i)), cluster.VMEndpoint(mid, vm), stream.Config{})
			host.AddSource(in, *rate*1e6/4)
		}
	}

	if *fault != "" {
		kind, after, err := parseFault(*fault)
		if err != nil {
			log.Fatalf("bad -fault: %v", err)
		}
		go func() {
			time.Sleep(after)
			injectFault(m, kind)
			log.Printf("injected fault %q", kind)
		}()
	}

	a, err := agent.Build(m, agent.BuildOptions{
		Clock:     c.NowNS,
		FlowStats: flowMode,
		Sketch: dataplane.SketchConfig{
			Width: *sketchWidth,
			Depth: *sketchDepth,
			TopK:  *sketchTopK,
		},
	})
	if err != nil {
		log.Fatalf("build agent: %v", err)
	}
	a.ReadTimeout = *readTimeout
	a.MaxConns = *maxConns
	a.Codec = *codec
	a.AllowDelta = *delta
	a.AllowStream = *push
	a.AllowSpans = *spansFlag
	a.CadenceMin = *cadenceMin
	a.CadenceMax = *cadenceMax

	if *telemetryAddr != "" {
		reg := telemetry.NewRegistry()
		a.EnableTelemetry(reg)
		c.EnableTelemetry(reg)
		c.EnableDropTracing(mid, 4096)
		started := time.Now()
		mux := telemetry.NewMux(reg, func() telemetry.Health {
			return telemetry.Health{
				Component: "agent",
				Identity:  *machineID,
				Elements:  len(a.Elements()),
				UptimeSec: time.Since(started).Seconds(),
				Extra: map[string]float64{
					"schema_ext_attrs":    float64(core.ExtAttrCount()),
					"schema_ext_rejected": float64(core.ExtRejected()),
				},
			}
		})
		if *pprofFlag {
			telemetry.RegisterPprof(mux)
		}
		taddr, err := telemetry.ServeHandler(*telemetryAddr, mux)
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		log.Printf("telemetry on http://%s/metrics", taddr)
	} else if *pprofFlag {
		log.Printf("-pprof ignored: set -telemetry to expose /debug/pprof")
	}

	// Advance the dataplane in real time.
	go func() {
		const step = 10 * time.Millisecond
		tick := time.NewTicker(step)
		defer tick.Stop()
		for range tick.C {
			c.Run(step)
		}
	}()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("perfsight-agent %s serving %d elements on %s", mid, len(a.Elements()), ln.Addr())
	if err := a.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
	os.Exit(0)
}

func flowID(s string) dataplane.FlowID { return dataplane.FlowID(s) }

func parseFault(s string) (kind string, after time.Duration, err error) {
	kind, rest, ok := strings.Cut(s, "@")
	if !ok {
		return kind, 0, nil
	}
	d, err := time.ParseDuration(rest)
	return kind, d, err
}

func injectFault(m *machine.Machine, kind string) {
	switch kind {
	case "membw":
		m.AddHog(&machine.Hog{Name: "membw", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33})
	case "cpu":
		for i := 0; i < 6; i++ {
			m.AddHog(&machine.Hog{Name: "cpu" + strconv.Itoa(i), Kind: machine.HogCPU, CPUDemandCores: 2})
		}
	case "vmcpu":
		if vms := m.VMs(); len(vms) > 0 {
			m.AddHog(&machine.Hog{Name: "vmcpu", Kind: machine.HogCPU, VM: vms[0], CPUDemandCores: 4})
		}
	case "memspace":
		m.AddHog(&machine.Hog{Name: "leak", Kind: machine.HogMemSpace, AllocBytes: 16<<30 - 256<<20})
	default:
		log.Printf("unknown fault %q ignored", kind)
	}
}
