package main

import (
	"flag"
	"fmt"
	"net/url"
	"time"

	"perfsight/internal/telemetry"
)

// runTrace talks to the trace spine of a flight-recorder controller:
// the recent-query listing (structured status per query) or one retained
// trace's skew-corrected waterfall, rendered client-side from the span
// forest so the output honors the local terminal width.
//
//	perfsight trace -endpoint http://localhost:9101
//	perfsight trace -id 42
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	endpoint := fs.String("endpoint", "http://localhost:9101", "flight-recorder controller base URL")
	id := fs.Uint64("id", 0, "render one retained trace's waterfall (0 = list)")
	limit := fs.Int("limit", 20, "newest traces to list (0 = all)")
	width := fs.Int("width", 48, "waterfall bar width, columns")
	fs.Parse(args)

	if *id > 0 {
		showTrace(*endpoint, *id, *width)
		return
	}
	listTraces(*endpoint, *limit)
}

// queryStatus renders a summary's structured status: ok, or the error
// with the stage it failed in.
func queryStatus(sum telemetry.TraceSummary) string {
	if sum.Err == "" {
		return "ok"
	}
	return fmt.Sprintf("ERROR in %s: %s", sum.FailStage, sum.Err)
}

func listTraces(endpoint string, limit int) {
	q := url.Values{}
	if limit > 0 {
		q.Set("n", fmt.Sprint(limit))
	}
	var resp telemetry.TraceList
	if err := getJSON(endpoint, "/traces", q, &resp); err != nil {
		fatalf("perfsight trace: %v", err)
	}
	fmt.Printf("%d recent quer(y/ies), %d retained with spans\n\n", len(resp.Recent), len(resp.Kept))
	fmt.Printf("%-8s %-24s %12s %6s  %s\n", "TRACE", "TARGET", "TOTAL", "SPANS", "STATUS")
	for _, sum := range resp.Recent {
		fmt.Printf("%-8d %-24s %12s %6d  %s\n",
			sum.ID, sum.Target, sum.Total, sum.Spans, queryStatus(sum.TraceSummary))
	}
	if len(resp.Kept) > 0 {
		fmt.Printf("\nretained span forests (perfsight trace -id N):\n")
		fmt.Printf("%-8s %-24s %12s %6s  %-8s %s\n", "TRACE", "TARGET", "TOTAL", "SPANS", "KEEP", "START")
		for _, tr := range resp.Kept {
			fmt.Printf("%-8d %-24s %12s %6d  %-8s %s\n",
				tr.ID, tr.Target, tr.Total, tr.SpanCount, tr.Keep,
				tr.Start.UTC().Format(time.RFC3339))
		}
	}
}

func showTrace(endpoint string, id uint64, width int) {
	var tr telemetry.StoredTrace
	if err := getJSON(endpoint, fmt.Sprintf("/traces/%d", id), nil, &tr); err != nil {
		fatalf("perfsight trace: %v", err)
	}
	fmt.Print(telemetry.RenderWaterfall(&tr, width))
}
