package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"perfsight/internal/anomaly"
	"perfsight/internal/history"
)

// runIncidents talks to the anomaly pipeline of a flight-recorder
// controller: the correlated incident list, one incident's timeline, or
// a live follow of diagnosis events as they land.
//
//	perfsight incidents -endpoint http://localhost:9101
//	perfsight incidents -id 3
//	perfsight incidents -follow
func runIncidents(args []string) {
	fs := flag.NewFlagSet("incidents", flag.ExitOnError)
	endpoint := fs.String("endpoint", "http://localhost:9101", "flight-recorder controller base URL")
	state := fs.String("state", "all", "filter the list: open, resolved or all")
	limit := fs.Int("limit", 20, "newest incidents to print (0 = all)")
	id := fs.Int64("id", 0, "show one incident with its event timeline (0 = list)")
	follow := fs.Bool("follow", false, "after the listing, stream live diagnosis events until interrupted")
	fs.Parse(args)

	switch {
	case *id > 0:
		showIncident(*endpoint, *id)
	default:
		listIncidents(*endpoint, *state, *limit)
	}
	if *follow {
		followIncidents(*endpoint)
	}
}

func listIncidents(endpoint, state string, limit int) {
	q := url.Values{"state": {state}}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	var resp struct {
		Incidents []anomaly.Incident `json:"incidents"`
		Open      int                `json:"open"`
	}
	if err := getJSON(endpoint, "/incidents", q, &resp); err != nil {
		fatalf("perfsight incidents: %v", err)
	}
	fmt.Printf("%d incident(s), %d open\n", len(resp.Incidents), resp.Open)
	for _, in := range resp.Incidents {
		printIncident(in, false)
	}
}

func showIncident(endpoint string, id int64) {
	var resp struct {
		Incident anomaly.Incident `json:"incident"`
		Events   []history.Event  `json:"events"`
	}
	if err := getJSON(endpoint, fmt.Sprintf("/incidents/%d", id), nil, &resp); err != nil {
		fatalf("perfsight incidents: %v", err)
	}
	printIncident(resp.Incident, true)
	if len(resp.Events) == 0 {
		fmt.Println("  (member events no longer retained by the journal)")
		return
	}
	fmt.Printf("  timeline (%d of %d events retained):\n", len(resp.Events), resp.Incident.EventCount)
	for _, ev := range resp.Events {
		printEvent(ev)
	}
}

func printIncident(in anomaly.Incident, detail bool) {
	span := fmt.Sprintf("%s .. %s", fmtTS(in.FirstSeen), fmtTS(in.LastSeen))
	if in.ResolvedAt > 0 {
		span += " resolved " + fmtTS(in.ResolvedAt)
	}
	fmt.Printf("#%-4d %-9s %-32s %3d event(s)  %s\n", in.ID, in.State, in.RootCause, in.EventCount, span)
	if in.DetectionNS > 0 {
		fmt.Printf("      detected %v after last known-good sample\n", time.Duration(in.DetectionNS))
	}
	fmt.Printf("      %s\n", in.Summary)
	if detail {
		fmt.Printf("      tenants:  %v\n", in.Tenants)
		fmt.Printf("      elements: %v\n", in.Elements)
	}
}

// followIncidents streams /events?follow=1 (NDJSON, one event per line,
// pushed from the journal's subscription fan-out) until the server goes
// away or the user interrupts.
func followIncidents(endpoint string) {
	u := endpoint + "/events?" + url.Values{"follow": {"1"}}.Encode()
	// No client timeout: this is a deliberately long-lived stream.
	resp, err := http.Get(u)
	if err != nil {
		fatalf("perfsight incidents -follow: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("perfsight incidents -follow: %s", resp.Status)
	}
	fmt.Println("following live diagnosis events (ctrl-c to stop)...")
	dec := json.NewDecoder(resp.Body)
	for {
		var ev history.Event
		if err := dec.Decode(&ev); err != nil {
			fatalf("perfsight incidents -follow: stream ended: %v", err)
		}
		if ev.IncidentID > 0 {
			fmt.Printf("[incident #%d]\n", ev.IncidentID)
		}
		printEvent(ev)
	}
}

func fmtTS(ns int64) string {
	return time.Unix(0, ns).UTC().Format(time.RFC3339)
}
