// Command perfsight is the all-in-one operator demo: it deploys a canned
// scenario on the simulated testbed, lets it run, and prints what the
// PerfSight diagnosis applications conclude.
//
//	perfsight -scenario list
//	perfsight -scenario membw
//	perfsight -scenario chain
//
// The top subcommand polls a running agent's or controller's /metrics
// endpoint and renders a live self-metrics table:
//
//	perfsight top -endpoint http://localhost:9100/metrics -interval 1s
//
// The history, watch, and diag subcommands talk to a flight-recorder
// controller (perfsight-controller -monitor 2s -telemetry :9101):
//
//	perfsight history -endpoint http://localhost:9101 -element m0/vm0/app -attr drop_packets
//	perfsight watch -endpoint http://localhost:9101
//	perfsight diag -endpoint http://localhost:9101 -at 2026-08-05T12:00:00Z -window 3s
//
// The incidents subcommand lists the anomaly pipeline's correlated
// incidents, shows one incident's event timeline, or follows the live
// diagnosis-event stream:
//
//	perfsight incidents -endpoint http://localhost:9101
//	perfsight incidents -id 3
//	perfsight incidents -follow
//
// The flows subcommand ranks an element's per-flow traffic, heaviest
// first — from the constant-memory flow_sketch summary when the agent
// runs -flow-stats=sketch (heavy hitters with exactness flags plus the
// ε·N bound for everything else), or from legacy rule_* enumeration:
//
//	perfsight flows -endpoint http://localhost:9101 -element m0/vswitch -k 10
//
// The trace subcommand lists the controller's recent queries with their
// structured status (error + failing stage) and renders one retained
// trace as an ASCII waterfall — controller stages plus the agent's
// skew-corrected per-channel gather spans:
//
//	perfsight trace -endpoint http://localhost:9101
//	perfsight trace -id 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"perfsight/internal/agent"
	"perfsight/internal/cluster"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/dataplane"
	"perfsight/internal/diagnosis"
	"perfsight/internal/machine"
	"perfsight/internal/middlebox"
	"perfsight/internal/stream"
)

type scenario struct {
	name, about string
	run         func() error
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "top":
			runTop(os.Args[2:])
			return
		case "history":
			runHistory(os.Args[2:])
			return
		case "watch":
			runWatch(os.Args[2:])
			return
		case "diag":
			runDiag(os.Args[2:])
			return
		case "incidents":
			runIncidents(os.Args[2:])
			return
		case "flows":
			runFlows(os.Args[2:])
			return
		case "trace":
			runTrace(os.Args[2:])
			return
		}
	}
	name := flag.String("scenario", "list", "scenario to run (or 'list')")
	flag.Parse()

	scenarios := []scenario{
		{"membw", "memory-bandwidth contention across VMs (Fig 11)", runMembw},
		{"backlog", "pCPU backlog contention from a small-packet flood (Fig 10)", runBacklog},
		{"bottleneck", "a single under-provisioned VM (Table 1, last row)", runBottleneck},
		{"chain", "root-cause middlebox in a chain under propagation (Fig 12)", runChain},
	}

	if *name == "list" {
		fmt.Println("available scenarios:")
		for _, s := range scenarios {
			fmt.Printf("  %-12s %s\n", s.name, s.about)
		}
		return
	}
	for _, s := range scenarios {
		if s.name == *name {
			if err := s.run(); err != nil {
				log.Fatal(err)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown scenario %q; try -scenario list\n", *name)
	os.Exit(2)
}

const tid = core.TenantID("demo")

// lab wires a cluster to a controller whose waits advance virtual time.
type lab struct {
	c   *cluster.Cluster
	ctl *controller.Controller
}

func newLab() *lab {
	c := cluster.New(time.Millisecond)
	ctl := controller.New(c.Topology())
	ctl.Wait = func(d time.Duration) { c.Run(d) }
	return &lab{c: c, ctl: ctl}
}

func (l *lab) attachAgents() error {
	for _, mid := range l.c.Machines() {
		a, err := agent.Build(l.c.Machine(mid), agent.BuildOptions{Clock: l.c.NowNS})
		if err != nil {
			return err
		}
		l.ctl.RegisterAgent(mid, &controller.LocalClient{A: a})
	}
	return nil
}

func runMembw() error {
	l := newLab()
	m := l.c.AddMachine(machine.DefaultConfig("m0"))
	for i := 0; i < 4; i++ {
		vm := core.VMID(fmt.Sprintf("vm%d", i))
		sink := middlebox.NewSink(core.ElementID(fmt.Sprintf("m0/%s/app", vm)), 2e9)
		l.c.PlaceVM("m0", vm, 1.0, 2e9, sink)
		host := l.c.AddHost(fmt.Sprintf("h%d", i), 0)
		for j := 0; j < 4; j++ {
			conn := l.c.Connect(flow("f%d-%d", i, j), cluster.HostEndpoint(fmt.Sprintf("h%d", i)),
				cluster.VMEndpoint("m0", vm), stream.Config{})
			host.AddSource(conn, 200e6)
		}
		l.c.AssignVM(tid, "m0", vm)
	}
	l.c.AssignStack(tid, "m0")
	if err := l.attachAgents(); err != nil {
		return err
	}

	tracer := l.c.EnableDropTracing("m0", 4096)

	fmt.Println("warming up a healthy deployment (4 VMs receiving ~3.2 Gbps)...")
	l.c.Run(3 * time.Second)
	rep, err := diagnosis.FindContentionAndBottleneck(l.ctl, tid, time.Second)
	if err != nil {
		return err
	}
	fmt.Println("baseline:", rep)

	fmt.Println("\nstarting memory-intensive VMs (streaming 26 GB/s)...")
	m.AddHog(&machine.Hog{Name: "memvms", Kind: machine.HogMem, MemDemandBps: 26e9, CyclesPerByte: 0.33})
	rep, err = diagnosis.FindContentionAndBottleneck(l.ctl, tid, 3*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("diagnosis:", rep)
	fmt.Printf("evidence: cpu %.0f%%, membus %.0f%%\n",
		rep.Evidence.CPUUtil*100, rep.Evidence.MembusUtil*100)
	fmt.Print(tracer)
	fmt.Println("operator action: migrate the memory-intensive VMs (§7.3)")
	return nil
}

func runBacklog() error {
	l := newLab()
	cfg := machine.DefaultConfig("m0")
	cfg.Stack.PNICRxBps = 1e9
	cfg.Stack.PNICTxBps = 1e9
	cfg.Stack.BacklogQueues = 1
	cfg.Stack.Costs.NAPICyclesPerPkt = 9000
	l.c.AddMachine(cfg)

	sink := middlebox.NewSink("m0/vm1/app", 1e9)
	l.c.PlaceVM("m0", "vm1", 1.0, 1e9, sink)
	src := l.c.AddHost("src", 0)
	for j := 0; j < 4; j++ {
		conn := l.c.Connect(flow("rx-%d", j, 0), cluster.HostEndpoint("src"),
			cluster.VMEndpoint("m0", "vm1"), stream.Config{})
		src.AddSource(conn, 125e6)
	}
	l.c.AddHost("peer", 0)
	flood := middlebox.NewRawSource("m0/vm2/app", 1e9, "smallpkts", 0, 64, nil)
	l.c.PlaceVM("m0", "vm2", 1.0, 1e9, flood)
	l.c.RouteFlow("smallpkts", cluster.VMEndpoint("m0", "vm2"), cluster.HostEndpoint("peer"))
	l.c.AssignStack(tid, "m0")
	l.c.AssignVM(tid, "m0", "vm1")
	l.c.AssignVM(tid, "m0", "vm2")
	if err := l.attachAgents(); err != nil {
		return err
	}

	fmt.Println("VM1 receiving 500 Mbps; VM2 idle...")
	l.c.Run(3 * time.Second)
	before := sink.ReceivedBytes()
	l.c.Run(time.Second)
	fmt.Printf("flow 1: %.0f Mbps\n", float64(sink.ReceivedBytes()-before)*8/1e6)

	fmt.Println("\nVM2 floods 64-byte packets as fast as it can...")
	flood.RateBps = 400e6
	rep, err := diagnosis.FindContentionAndBottleneck(l.ctl, tid, 3*time.Second)
	if err != nil {
		return err
	}
	before = sink.ReceivedBytes()
	l.c.Run(time.Second)
	fmt.Printf("flow 1 now: %.0f Mbps\n", float64(sink.ReceivedBytes()-before)*8/1e6)
	fmt.Println("diagnosis:", rep)
	fmt.Printf("NIC check: rx+tx %.0f Mbps of %.0f Mbps — the wire is NOT the problem\n",
		(rep.Evidence.PNICRxBps+rep.Evidence.PNICTxBps)/1e6, rep.Evidence.PNICCapBps/1e6)
	return nil
}

func runBottleneck() error {
	l := newLab()
	l.c.AddMachine(machine.DefaultConfig("m0"))
	l.c.PlaceVM("m0", "vm0", 1.0, 1e9, middlebox.NewSink("m0/vm0/app", 1e9))
	l.c.PlaceVM("m0", "vm1", 0.02, 1e9, middlebox.NewSink("m0/vm1/app", 1e9)) // starved
	gw := l.c.AddHost("gw", 0)
	l.c.RouteFlow("f0", cluster.HostEndpoint("gw"), cluster.VMEndpoint("m0", "vm0"))
	l.c.RouteFlow("f1", cluster.HostEndpoint("gw"), cluster.VMEndpoint("m0", "vm1"))
	l.c.Engine.AddFunc(func(now, dt time.Duration) {
		for _, f := range []string{"f0", "f1"} {
			bytes := int64(400e6 / 8 * dt.Seconds())
			gw.EmitRaw(wireBatch(f, bytes))
		}
	})
	l.c.AssignStack(tid, "m0")
	l.c.AssignVM(tid, "m0", "vm0")
	l.c.AssignVM(tid, "m0", "vm1")
	if err := l.attachAgents(); err != nil {
		return err
	}

	fmt.Println("two VMs each receiving 400 Mbps; vm1 has 2% of a core...")
	l.c.Run(2 * time.Second)
	rep, err := diagnosis.FindContentionAndBottleneck(l.ctl, tid, 3*time.Second)
	if err != nil {
		return err
	}
	fmt.Println("diagnosis:", rep)
	fmt.Println("operator action: the tenant should redeploy", rep.BottleneckVM, "in a larger VM (§2.2)")
	return nil
}

func runChain() error {
	l := newLab()
	l.c.RmemPerConn = 212992
	l.c.AddMachine(machine.DefaultConfig("m0"))
	const C = 100e6

	server := middlebox.NewServer("m0/vm-srv/app", C, 600)
	l.c.PlaceVM("m0", "vm-srv", 1.0, C, server)
	toSrv := l.c.Connect("px-srv", cluster.VMEndpoint("m0", "vm-px"), cluster.VMEndpoint("m0", "vm-srv"), stream.Config{})
	proxy := middlebox.NewProxy("m0/vm-px/app", C, middlebox.ConnOutput{C: toSrv})
	l.c.PlaceVM("m0", "vm-px", 1.0, C, proxy)
	toPx := l.c.Connect("lb-px", cluster.VMEndpoint("m0", "vm-lb"), cluster.VMEndpoint("m0", "vm-px"), stream.Config{})
	lb := middlebox.NewLoadBalancer("m0/vm-lb/app", C, middlebox.ConnOutput{C: toPx})
	l.c.PlaceVM("m0", "vm-lb", 1.0, C, lb)
	client := l.c.AddHost("client", 0)
	in := l.c.Connect("cl-lb", cluster.HostEndpoint("client"), cluster.VMEndpoint("m0", "vm-lb"), stream.Config{})
	client.AddSource(in, 0)

	l.c.AssignStack(tid, "m0")
	for _, vm := range []core.VMID{"vm-lb", "vm-px", "vm-srv"} {
		l.c.AssignVM(tid, "m0", vm)
	}
	l.c.AddChain(tid, "m0/vm-lb/app", "m0/vm-px/app", "m0/vm-srv/app")
	if err := l.attachAgents(); err != nil {
		return err
	}

	fmt.Println("client -> LB -> proxy -> server; the client POSTs as fast as possible...")
	l.c.Run(3 * time.Second)
	rep, err := diagnosis.LocateRootCause(l.ctl, tid, 2*time.Second)
	if err != nil {
		return err
	}
	for _, id := range []core.ElementID{"m0/vm-lb/app", "m0/vm-px/app", "m0/vm-srv/app"} {
		m := rep.Metrics[id]
		fmt.Printf("  %-16s b/t_in %10.1f Mbps  b/t_out %10.1f Mbps  %s\n",
			id.Leaf()+"@"+string(id.VM()), m.InRateBps/1e6, m.OutRateBps/1e6, m.State)
	}
	fmt.Println("verdict:", rep)
	return nil
}

func flow(format string, a, b int) dataplane.FlowID {
	return dataplane.FlowID(fmt.Sprintf(format, a, b))
}

func wireBatch(f string, bytes int64) dataplane.Batch {
	pkts := int(bytes / 1448)
	if pkts < 1 {
		pkts = 1
	}
	return dataplane.Batch{Flow: dataplane.FlowID(f), Packets: pkts, Bytes: bytes}
}
