package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/history"
)

// The history, watch, and diag subcommands are HTTP clients of a
// flight-recorder controller (perfsight-controller -monitor ... -telemetry
// ...): history browses the stored time series, watch tails the diagnosis
// event journal, and diag runs Algorithms 1 and 2 from history over any
// past window without touching an agent.

// getJSON fetches endpoint+path?query and decodes the JSON body into out.
func getJSON(endpoint, path string, query url.Values, out any) error {
	u := endpoint + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runHistory browses the flight recorder: elements without -element,
// attrs without -attr, otherwise the stored points of one series.
func runHistory(args []string) {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	endpoint := fs.String("endpoint", "http://localhost:9101", "flight-recorder controller base URL")
	tenant := fs.String("tenant", "", "tenant (empty = controller default)")
	element := fs.String("element", "", "element ID; empty lists the tenant's recorded elements")
	attr := fs.String("attr", "", "attribute name; empty lists the element's recorded attrs")
	from := fs.String("from", "", "oldest timestamp (ns int or RFC3339)")
	to := fs.String("to", "", "newest timestamp (ns int or RFC3339)")
	limit := fs.Int("limit", 50, "newest points to print (0 = all)")
	fs.Parse(args)

	q := url.Values{}
	for k, v := range map[string]string{
		"tenant": *tenant, "element": *element, "attr": *attr,
		"from": *from, "to": *to,
	} {
		if v != "" {
			q.Set(k, v)
		}
	}
	if *limit > 0 {
		q.Set("limit", fmt.Sprint(*limit))
	}
	var resp struct {
		Tenant   core.TenantID    `json:"tenant"`
		Elements []core.ElementID `json:"elements"`
		Attrs    []string         `json:"attrs"`
		Points   []history.Point  `json:"points"`
	}
	if err := getJSON(*endpoint, "/history", q, &resp); err != nil {
		fatalf("perfsight history: %v", err)
	}
	switch {
	case *element == "":
		fmt.Printf("tenant %s: %d recorded elements\n", resp.Tenant, len(resp.Elements))
		for _, id := range resp.Elements {
			fmt.Println(" ", id)
		}
	case *attr == "":
		fmt.Printf("%s: %d recorded attrs\n", *element, len(resp.Attrs))
		for _, a := range resp.Attrs {
			fmt.Println(" ", a)
		}
	default:
		fmt.Printf("%s %s: %d points\n", *element, *attr, len(resp.Points))
		for _, p := range resp.Points {
			fmt.Printf("  %20d  %s\n", p.TS, formatValue(p.V))
		}
	}
}

// runWatch tails the diagnosis event journal, printing each event's
// summary and evidence as it lands.
func runWatch(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	endpoint := fs.String("endpoint", "http://localhost:9101", "flight-recorder controller base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	since := fs.Int64("since", 0, "start after this event sequence number")
	once := fs.Bool("once", false, "print the current journal and exit")
	fs.Parse(args)

	cursor := *since
	for {
		var resp struct {
			Events  []history.Event `json:"events"`
			Next    int64           `json:"next"`
			Dropped uint64          `json:"dropped"`
		}
		q := url.Values{"since": {fmt.Sprint(cursor)}}
		if err := getJSON(*endpoint, "/events", q, &resp); err != nil {
			fmt.Fprintf(os.Stderr, "perfsight watch: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		for _, ev := range resp.Events {
			printEvent(ev)
		}
		cursor = resp.Next
		if *once {
			if len(resp.Events) == 0 {
				fmt.Println("no events")
			}
			return
		}
		time.Sleep(*interval)
	}
}

func printEvent(ev history.Event) {
	fmt.Printf("#%d %s  tenant=%s element=%s  drop rate %.0f pkts/s\n",
		ev.Seq, time.Unix(0, ev.TS).UTC().Format(time.RFC3339), ev.Tenant, ev.Element, ev.DropRate)
	fmt.Printf("    %s\n", ev.Summary)
	if ev.Stack != nil {
		printStack(ev.Stack, "    ")
	}
	if ev.Chain != nil {
		printChain(ev.Chain, "    ")
	}
}

// runDiag diagnoses a past window from the history store: Algorithm 1
// (and 2 where the tenant has chains) with zero agent queries.
func runDiag(args []string) {
	fs := flag.NewFlagSet("diag", flag.ExitOnError)
	endpoint := fs.String("endpoint", "http://localhost:9101", "flight-recorder controller base URL")
	tenant := fs.String("tenant", "", "tenant (empty = controller default)")
	at := fs.String("at", "", "window end timestamp (ns int or RFC3339; empty = newest history)")
	window := fs.Duration("window", 3*time.Second, "measurement window ending at -at")
	fs.Parse(args)

	q := url.Values{"window": {window.String()}}
	if *tenant != "" {
		q.Set("tenant", *tenant)
	}
	if *at != "" {
		q.Set("at", *at)
	}
	var resp struct {
		Tenant   core.TenantID               `json:"tenant"`
		AsOf     int64                       `json:"as_of"`
		WindowNS int64                       `json:"window_ns"`
		Stack    *diagnosis.ContentionReport `json:"stack"`
		StackErr string                      `json:"stack_error"`
		Chain    *diagnosis.RootCauseReport  `json:"chain"`
		ChainErr string                      `json:"chain_error"`
	}
	if err := getJSON(*endpoint, "/diagnose", q, &resp); err != nil {
		fatalf("perfsight diag: %v", err)
	}
	fmt.Printf("tenant %s, window %v ending at %s (from history, no agent queries)\n",
		resp.Tenant, time.Duration(resp.WindowNS), time.Unix(0, resp.AsOf).UTC().Format(time.RFC3339Nano))
	if resp.Stack != nil {
		printStack(resp.Stack, "")
	} else if resp.StackErr != "" {
		fmt.Println("stack:", resp.StackErr)
	}
	if resp.Chain != nil {
		printChain(resp.Chain, "")
	} else if resp.ChainErr != "" {
		fmt.Println("chains:", resp.ChainErr)
	}
}

// runFlows ranks per-flow traffic per element: sketch heavy hitters
// (with exactness flags and the ε·N bound) or legacy enumeration.
func runFlows(args []string) {
	fs := flag.NewFlagSet("flows", flag.ExitOnError)
	endpoint := fs.String("endpoint", "http://localhost:9101", "flight-recorder controller base URL")
	tenant := fs.String("tenant", "", "tenant (empty = controller default)")
	element := fs.String("element", "", "element ID; empty ranks every element with flow statistics")
	at := fs.String("at", "", "as-of timestamp (ns int or RFC3339; empty = newest)")
	k := fs.Int("k", 10, "flows to print per element (0 = all)")
	fs.Parse(args)

	q := url.Values{}
	for key, v := range map[string]string{"tenant": *tenant, "element": *element, "at": *at} {
		if v != "" {
			q.Set(key, v)
		}
	}
	if *k > 0 {
		q.Set("k", fmt.Sprint(*k))
	}
	var resp struct {
		Tenant core.TenantID           `json:"tenant"`
		Flows  []*diagnosis.FlowReport `json:"flows"`
	}
	if err := getJSON(*endpoint, "/flows", q, &resp); err != nil {
		fatalf("perfsight flows: %v", err)
	}
	for _, fr := range resp.Flows {
		fmt.Print(fr)
	}
}

func printStack(rep *diagnosis.ContentionReport, pad string) {
	fmt.Printf("%sstack:  %s\n", pad, rep)
	for i, e := range rep.Ranked {
		if i >= 5 || e.Loss == 0 {
			break
		}
		fmt.Printf("%s  #%d %-30s %8.0f pkts lost\n", pad, i+1, e.Element, e.Loss)
	}
	if rep.HotFlows != nil {
		for _, line := range strings.Split(strings.TrimRight(rep.HotFlows.String(), "\n"), "\n") {
			fmt.Printf("%s  %s\n", pad, line)
		}
	}
}

func printChain(rep *diagnosis.RootCauseReport, pad string) {
	fmt.Printf("%schains: %s\n", pad, rep)
	for _, step := range rep.Pruning {
		fmt.Printf("%s  pruned %v: %s is %s\n", pad, step.Removed, step.Middlebox, step.State)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
