package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"perfsight/internal/telemetry"
)

// runTop polls a /metrics endpoint and renders a live self-metrics table
// (the "perfsight top" subcommand): current value plus per-second rate
// for counters, computed from successive scrapes.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	endpoint := fs.String("endpoint", "http://localhost:9100/metrics", "metrics endpoint to poll")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "scrape once and exit (no screen clearing)")
	buckets := fs.Bool("buckets", false, "include histogram bucket rows")
	traces := fs.Bool("traces", true, "append the recent-query table (/traces on the same host) when the endpoint serves it")
	fs.Parse(args)

	var prev map[string]float64
	var prevAt time.Time
	for {
		samples, err := scrape(*endpoint)
		now := time.Now()
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfsight top: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		if !*once {
			fmt.Print("\033[2J\033[H") // clear screen, home cursor
		}
		fmt.Printf("perfsight top — %s — %s\n\n", *endpoint, now.Format("15:04:05"))
		fmt.Printf("%-64s %16s %12s\n", "METRIC", "VALUE", "RATE/S")
		cur := make(map[string]float64, len(samples))
		for _, s := range samples {
			if s.Bucket && !*buckets {
				continue
			}
			cur[s.Key] = s.Value
			rate := ""
			if strings.HasSuffix(s.Name, "_total") && prev != nil {
				if p, ok := prev[s.Key]; ok {
					dt := now.Sub(prevAt).Seconds()
					if dt > 0 {
						rate = fmt.Sprintf("%.1f", (s.Value-p)/dt)
					}
				}
			}
			fmt.Printf("%-64s %16s %12s\n", s.Key, formatValue(s.Value), rate)
		}
		if *traces {
			printRecentQueries(strings.TrimSuffix(*endpoint, "/metrics"))
		}
		if *once {
			return
		}
		prev, prevAt = cur, now
		time.Sleep(*interval)
	}
}

// printRecentQueries appends the trace spine's recent-query view: one
// row per traced query with its structured status (ok, or the error and
// the stage it failed in). Endpoints without a /traces surface (agents,
// controllers running without -spans) are skipped silently.
func printRecentQueries(base string) {
	var resp telemetry.TraceList
	if err := getJSON(base, "/traces", url.Values{"n": {"10"}}, &resp); err != nil {
		return
	}
	if len(resp.Recent) == 0 {
		return
	}
	fmt.Printf("\nRECENT QUERIES (newest first; perfsight trace -id N for the waterfall)\n")
	fmt.Printf("%-8s %-24s %12s %6s  %s\n", "TRACE", "TARGET", "TOTAL", "SPANS", "STATUS")
	for _, sum := range resp.Recent {
		fmt.Printf("%-8d %-24s %12s %6d  %s\n",
			sum.ID, sum.Target, sum.Total, sum.Spans, queryStatus(sum.TraceSummary))
	}
}

// scrape fetches and parses one exposition, sorted by series key.
func scrape(endpoint string) ([]telemetry.Sample, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(endpoint)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", endpoint, resp.Status)
	}
	samples, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return nil, err
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Key < samples[j].Key })
	return samples, nil
}

// formatValue renders large values compactly (durations stay in ns).
func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e9:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
