// Command perfsight-controller connects to one or more perfsight-agents
// over TCP, discovers their elements, and either watches drop locations
// live, runs the Algorithm 1 contention/bottleneck diagnosis, or records
// continuous monitoring history (the flight recorder) and serves it over
// HTTP for after-the-fact diagnosis.
//
//	perfsight-controller -agents m0=localhost:7700 -diagnose -window 3s
//	perfsight-controller -agents m0=localhost:7700 -watch 1s
//	perfsight-controller -agents m0=localhost:7700 -monitor 2s -telemetry :9101
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"perfsight/internal/anomaly"
	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/history"
	"perfsight/internal/ingest"
	"perfsight/internal/operator"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

func main() {
	agents := flag.String("agents", "m0=localhost:7700", "comma-separated machine=host:port agent addresses")
	watch := flag.Duration("watch", 0, "poll interval for live drop watching (0 = off)")
	diagnose := flag.Bool("diagnose", false, "run the contention/bottleneck diagnosis once")
	advise := flag.Bool("advise", false, "diagnose and print remediation advice")
	window := flag.Duration("window", 3*time.Second, "measurement window for diagnosis")
	telemetryAddr := flag.String("telemetry", "", "serve self-metrics (/metrics, /healthz) on this address, e.g. :9101 (empty = disabled)")
	def := controller.DefaultSweepConfig()
	sweepDeadline := flag.Duration("sweep-deadline", def.Deadline, "wall-clock budget for one full collection sweep; slow agents are abandoned past it (0 = unbounded)")
	sweepRetries := flag.Int("sweep-retries", def.Retries, "extra attempts per agent within a sweep after a transport failure")
	sweepBackoff := flag.Duration("sweep-backoff", def.BackoffBase, "first retry delay; doubles per retry with jitter")
	sweepBackoffMax := flag.Duration("sweep-backoff-max", def.BackoffMax, "cap on the grown retry delay (0 = uncapped)")
	breakerThreshold := flag.Int("breaker-threshold", def.BreakerThreshold, "consecutive failures that open an agent's breaker so sweeps skip it (0 = breaker off)")
	breakerCooldown := flag.Duration("breaker-cooldown", def.BreakerCooldown, "how long an open breaker waits before a single probe query")
	codec := flag.String("codec", wire.CodecV2, "wire codec to offer agents: v2 (binary, falls back to JSON per agent) or json (skip negotiation)")
	delta := flag.Bool("delta", false, "request delta-encoded sweep responses on v2 connections (changed attrs only)")
	sketch := flag.Bool("sketch", true, "request sketch flow summaries from agents that offer them (constant-size flow_sketch blob instead of per-rule attr enumeration); agents without the capability fall back to legacy")
	spans := flag.Bool("spans", true, "request agent-side trace spans on v2 connections (per-channel gather spans piggybacked on sweep responses and push frames); span-blind agents degrade silently")
	traceKeep := flag.Int("trace-keep", 256, "traces retained with full span forests in the span store (sampled/error/slow, plus incident-pinned)")
	traceSample := flag.Int("trace-sample", 1, "head sampling: retain every Nth trace's spans (1 = all); error and slow traces are kept regardless")
	traceSlow := flag.Duration("trace-slow", 0, "tail-keep traces slower than this end to end, independent of sampling (0 = off)")
	monitor := flag.Duration("monitor", 0, "flight recorder: sweep all elements at this cadence into the history store and keep serving (0 = off)")
	push := flag.Bool("push", true, "with -monitor: stream delta frames from push-capable agents on arrival, demoting the sweep loop to a fallback for pull-only or stream-down agents")
	cadenceMin := flag.Duration("cadence-min", 100*time.Millisecond, "fastest push cadence to request from streaming agents (they may enforce a slower floor)")
	cadenceMax := flag.Duration("cadence-max", 5*time.Second, "slowest push cadence streams decay to while counters are quiescent")
	ingestQueue := flag.Int("ingest-queue", 64, "bounded per-agent ingest queue (batches); overflow drops oldest and throttles the sender")
	histRetention := flag.Duration("history-retention", 15*time.Minute, "evict downsampled history older than this behind the newest sample")
	histMaxPoints := flag.Int("history-max-points", 512, "full-cadence points retained per (element, attr) series before step-down")
	histStep := flag.Duration("history-downsample", 10*time.Second, "step-down resolution: one retained point per step for aged history")
	eventsCap := flag.Int("events-cap", 256, "bounded diagnosis-event journal capacity (oldest overwritten)")
	anomalyOn := flag.Bool("anomaly", true, "run the always-on anomaly pipeline on monitor sweeps (per-series baselines, SLO triggers, incident correlation)")
	sloConfigPath := flag.String("slo-config", "", "JSON per-tenant SLO file ({\"default\": {...}, \"tenants\": {...}}); flag thresholds fill its unset fields")
	var sloDropPPS float64
	flag.Float64Var(&sloDropPPS, "slo-drop-pps", 50, "per-element drop rate (pkts/s between sweeps) that violates the SLO and triggers a diagnosis event")
	flag.Float64Var(&sloDropPPS, "event-drop-threshold", 50, "alias for -slo-drop-pps (pre-pipeline name)")
	var sloWindow time.Duration
	flag.DurationVar(&sloWindow, "slo-window", 3*time.Second, "history window a triggered diagnosis event analyzes")
	flag.DurationVar(&sloWindow, "event-window", 3*time.Second, "alias for -slo-window (pre-pipeline name)")
	var sloCooldown time.Duration
	flag.DurationVar(&sloCooldown, "slo-cooldown", 30*time.Second, "minimum spacing between diagnosis triggers per tenant")
	flag.DurationVar(&sloCooldown, "event-cooldown", 30*time.Second, "alias for -slo-cooldown (pre-pipeline name)")
	ewmaBands := flag.Float64("ewma-bands", 6, "EWMA deviation-band multiplier for baseline detectors on non-drop series")
	incidentWindow := flag.Duration("incident-window", 5*time.Minute, "sliding window within which same-root-cause events fold into one incident")
	incidentResolve := flag.Duration("incident-resolve-after", time.Minute, "quiet period after which an open incident resolves")
	pprofFlag := flag.Bool("pprof", false, "expose Go profiling endpoints (/debug/pprof/*) on the -telemetry address")
	flag.Parse()
	if *codec != wire.CodecV2 && *codec != wire.CodecJSON {
		log.Fatalf("bad -codec %q (want v2 or json)", *codec)
	}

	topo := core.NewTopology()
	ctl := controller.New(topo)
	ctl.Sweep = controller.SweepConfig{
		Deadline:         *sweepDeadline,
		Retries:          *sweepRetries,
		BackoffBase:      *sweepBackoff,
		BackoffMax:       *sweepBackoffMax,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	const tid = core.TenantID("operator")

	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	var spanStore *telemetry.SpanStore
	if *telemetryAddr != "" {
		reg = telemetry.NewRegistry()
		tracer = ctl.EnableTelemetry(reg)
		diagnosis.EnableTelemetry(reg)
		if *spans {
			spanStore = telemetry.NewSpanStore(reg, *traceKeep, 64, 64)
			tracer.AttachSpanStore(spanStore, *traceSample, *traceSlow)
		}
	}

	agentAddrs := make(map[core.MachineID]string)
	for _, spec := range strings.Split(*agents, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(spec), "=")
		if !ok {
			log.Fatalf("bad -agents entry %q (want machine=host:port)", spec)
		}
		mid := core.MachineID(name)
		agentAddrs[mid] = addr
		client := controller.NewTCPClient(addr)
		client.Codec = *codec
		client.Delta = *delta
		client.Sketch = *sketch
		client.Spans = *spans
		if reg != nil {
			client.EnableTelemetry(reg, tracer)
		}
		if d, err := client.Ping(); err != nil {
			log.Fatalf("agent %s at %s unreachable: %v", name, addr, err)
		} else {
			log.Printf("agent %s at %s (rtt %v, codec %s)", name, addr, d, client.NegotiatedCodec())
		}
		metas, err := client.ListElements()
		if err != nil {
			log.Fatalf("list elements from %s: %v", name, err)
		}
		net := topo.Net(tid)
		for _, meta := range metas {
			net.Add(meta.ID, core.ElementInfo{Machine: mid, Kind: meta.Kind})
		}
		ctl.RegisterAgent(mid, client)
		log.Printf("  %d elements discovered", len(metas))
	}

	// Flight recorder: continuous monitoring history plus the anomaly
	// pipeline that turns sweeps into evidence-bearing diagnosis events
	// and correlated incidents.
	var (
		store   *history.Store
		journal *history.Journal
		mon     *history.Monitor
		pipe    *anomaly.Pipeline
	)
	netOf := func(t core.TenantID) *core.VirtualNet { return topo.Tenants[t] }
	if *monitor > 0 {
		store = history.New(history.Config{
			Retention:          *histRetention,
			MaxPointsPerSeries: *histMaxPoints,
			DownsampleStep:     *histStep,
		})
		journal = history.NewJournal(*eventsCap)
		mon = history.NewMonitor(ctl, store, history.MonitorConfig{Interval: *monitor})
		if *anomalyOn {
			sloCfg := anomaly.SLOConfig{}
			if *sloConfigPath != "" {
				var err error
				sloCfg, err = anomaly.LoadSLOConfig(*sloConfigPath)
				if err != nil {
					log.Fatalf("%v", err)
				}
			}
			sloCfg = sloCfg.WithBase(anomaly.SLO{
				DropRatePPS: sloDropPPS,
				Bands:       *ewmaBands,
				Window:      anomaly.Duration(sloWindow),
				Cooldown:    anomaly.Duration(sloCooldown),
			})
			pipe = anomaly.NewPipeline(store, journal, anomaly.Config{
				SLO: sloCfg,
				Correlator: anomaly.CorrelatorConfig{
					Window:       *incidentWindow,
					ResolveAfter: *incidentResolve,
				},
			})
			pipe.Net = netOf
			// Incidents reference the traces whose records triggered them
			// and pin those traces in the span store so the evidence
			// outlives the transient retention window.
			pipe.Spans = spanStore
			pipe.TraceOf = ctl.LastTraceID
			mon.AfterSweep = pipe.AfterSweep
		}
		if reg != nil {
			store.EnableTelemetry(reg)
			journal.EnableTelemetry(reg)
			mon.EnableTelemetry(reg)
			if pipe != nil {
				pipe.EnableTelemetry(reg)
			}
		}
	}

	// Push ingest: stream delta frames from push-capable agents straight
	// into the store (and through the anomaly pipeline) on arrival. The
	// monitor keeps sweeping as a fallback, skipping machines with a live
	// stream; pull-only agents and dropped streams stay covered.
	var ingestMgr *ingest.Manager
	if *push && mon != nil {
		ingestMgr = ingest.NewManager(ingest.Config{
			CadenceMin: *cadenceMin,
			CadenceMax: *cadenceMax,
			QueueSize:  *ingestQueue,
			Codec:      *codec,
			Delta:      *delta,
			Sketch:     *sketch,
			Spans:      *spans,
			Tracer:     tracer,
			Sink: func(_ core.MachineID, recs []core.Record, traceID uint64) {
				for _, r := range recs {
					store.Append(tid, r)
				}
				if pipe != nil {
					pipe.ObserveTraced(tid, recs, traceID)
				}
			},
		})
		for mid, addr := range agentAddrs {
			ingestMgr.Add(mid, addr)
		}
		mon.Skip = ingestMgr.Streaming
		if reg != nil {
			ingestMgr.EnableTelemetry(reg)
		}
		go func() { _ = ingestMgr.Run(context.Background()) }()
		log.Printf("push ingest: streaming %d agents (cadence %v..%v, queue %d); sweep loop demoted to fallback",
			len(agentAddrs), *cadenceMin, *cadenceMax, *ingestQueue)
	} else if *push && mon == nil {
		log.Printf("-push ignored: push ingest needs -monitor for the history store")
	}

	if reg != nil {
		started := time.Now()
		mux := telemetry.NewMux(reg, func() telemetry.Health {
			h := telemetry.Health{
				Component: "controller",
				Identity:  "controller",
				Elements:  len(ctl.TenantElements(tid, nil)),
				UptimeSec: time.Since(started).Seconds(),
				// Schema-registry pressure: decoding legacy exact flow
				// records registers one ext attr per rule name, so a big
				// tenant mix can exhaust the 16,384-name cap. Rejections
				// used to be silent; now they are countable here.
				Extra: map[string]float64{
					"schema_ext_attrs":    float64(core.ExtAttrCount()),
					"schema_ext_rejected": float64(core.ExtRejected()),
				},
			}
			if store != nil {
				st := store.Stats()
				h.Extra["history_series"] = float64(st.Series)
				h.Extra["history_resident_points"] = float64(st.Resident)
				h.Extra["history_evicted_points"] = float64(st.Evicted)
				if journal != nil {
					n, seq, dropped := journal.Stats()
					h.Extra["journal_events"] = float64(n)
					h.Extra["journal_last_seq"] = float64(seq)
					h.Extra["journal_dropped"] = float64(dropped)
				}
				if pipe != nil {
					h.Extra["incidents_open"] = float64(pipe.Incidents.OpenCount())
				}
			}
			if ingestMgr != nil {
				var streaming, dropped, gaps, queued float64
				for _, sh := range ingestMgr.Health() {
					if sh.State == ingest.StateStreaming {
						streaming++
					}
					dropped += float64(sh.Dropped)
					gaps += float64(sh.Gaps)
					queued += float64(sh.QueueLen)
				}
				h.Extra["ingest_streams_active"] = streaming
				h.Extra["ingest_batches_dropped"] = dropped
				h.Extra["ingest_seq_gaps"] = gaps
				h.Extra["ingest_queue_depth"] = queued
			}
			return h
		})
		if store != nil {
			hs := &history.Server{Store: store, Journal: journal, Net: netOf, DefaultTenant: tid}
			hs.Register(mux)
		}
		if spanStore != nil {
			ts := &telemetry.TraceServer{Tracer: tracer, Store: spanStore}
			ts.Register(mux)
		}
		if pipe != nil {
			as := &anomaly.Server{Pipeline: pipe, Journal: journal}
			as.Register(mux)
		}
		if *pprofFlag {
			telemetry.RegisterPprof(mux)
		}
		taddr, err := telemetry.ServeHandler(*telemetryAddr, mux)
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		log.Printf("telemetry on http://%s/metrics", taddr)
	} else if *pprofFlag {
		log.Printf("-pprof ignored: set -telemetry to expose /debug/pprof")
	}

	switch {
	case mon != nil:
		if reg == nil {
			log.Printf("note: -monitor without -telemetry records history but serves no /history, /events or /diagnose endpoints")
		}
		log.Printf("flight recorder: sweeping every %v (retention %v, %d raw points/series, step %v)",
			*monitor, *histRetention, *histMaxPoints, *histStep)
		if err := mon.Run(context.Background()); err != nil && err != context.Canceled {
			log.Fatalf("monitor: %v", err)
		}

	case *advise:
		tk, err := operator.Diagnose(ctl, tid, *window)
		if err != nil {
			log.Fatalf("advise: %v", err)
		}
		if tk.Stack != nil {
			fmt.Println("stack: ", tk.Stack)
		}
		if tk.Chain != nil {
			fmt.Println("chains:", tk.Chain)
		}
		for _, r := range operator.Advise(tk) {
			fmt.Println("  ", r)
		}

	case *diagnose:
		rep, err := diagnosis.FindContentionAndBottleneck(ctl, tid, *window)
		if err != nil {
			log.Fatalf("diagnose: %v", err)
		}
		fmt.Println(rep)
		fmt.Printf("evidence: cpu %.0f%%, membus %.0f%%, pNIC rx %.0f Mbps / tx %.0f Mbps\n",
			rep.Evidence.CPUUtil*100, rep.Evidence.MembusUtil*100,
			rep.Evidence.PNICRxBps/1e6, rep.Evidence.PNICTxBps/1e6)
		for i, e := range rep.Ranked {
			if i >= 5 || e.Loss == 0 {
				break
			}
			fmt.Printf("  #%d %-30s %8.0f pkts lost\n", i+1, e.Element, e.Loss)
		}

	case *watch > 0:
		watchDrops(ctl, tid, *watch)

	default:
		// One-shot inventory dump.
		ids := ctl.TenantElements(tid, nil)
		recs, err := ctl.Sample(tid, ids)
		if err != nil {
			log.Printf("partial sample: %v", err)
		}
		sorted := make([]core.ElementID, 0, len(recs))
		for id := range recs {
			sorted = append(sorted, id)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, id := range sorted {
			rec := recs[id]
			fmt.Printf("%-32s rx %12.0f B  tx %12.0f B  drops %8.0f\n", id,
				rec.GetOr(core.AttrRxBytes, 0), rec.GetOr(core.AttrTxBytes, 0),
				rec.GetOr(core.AttrDropPackets, 0))
		}
	}
	os.Exit(0)
}

// watchDrops polls all elements and prints per-interval drop deltas.
func watchDrops(ctl *controller.Controller, tid core.TenantID, interval time.Duration) {
	ids := ctl.TenantElements(tid, nil)
	prev, err := ctl.Sample(tid, ids)
	if err != nil {
		log.Printf("partial sample: %v", err)
	}
	for {
		time.Sleep(interval)
		cur, err := ctl.Sample(tid, ids)
		if err != nil {
			log.Printf("partial sample: %v", err)
		}
		type row struct {
			id   core.ElementID
			loss float64
		}
		var rows []row
		for id, c := range cur {
			p, ok := prev[id]
			if !ok {
				continue
			}
			iv := controller.Interval{Prev: p, Cur: c}
			if loss := iv.DropPackets(); loss > 0 {
				rows = append(rows, row{id, loss})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].loss > rows[j].loss })
		if len(rows) == 0 {
			fmt.Printf("%s  no drops\n", time.Now().Format("15:04:05"))
		} else {
			fmt.Printf("%s  drops:", time.Now().Format("15:04:05"))
			for i, r := range rows {
				if i >= 4 {
					break
				}
				fmt.Printf("  %s=%0.f", r.id, r.loss)
			}
			fmt.Println()
		}
		prev = cur
	}
}
