// Command perfsight-controller connects to one or more perfsight-agents
// over TCP, discovers their elements, and either watches drop locations
// live or runs the Algorithm 1 contention/bottleneck diagnosis.
//
//	perfsight-controller -agents m0=localhost:7700 -diagnose -window 3s
//	perfsight-controller -agents m0=localhost:7700 -watch 1s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"perfsight/internal/controller"
	"perfsight/internal/core"
	"perfsight/internal/diagnosis"
	"perfsight/internal/operator"
	"perfsight/internal/telemetry"
	"perfsight/internal/wire"
)

func main() {
	agents := flag.String("agents", "m0=localhost:7700", "comma-separated machine=host:port agent addresses")
	watch := flag.Duration("watch", 0, "poll interval for live drop watching (0 = off)")
	diagnose := flag.Bool("diagnose", false, "run the contention/bottleneck diagnosis once")
	advise := flag.Bool("advise", false, "diagnose and print remediation advice")
	window := flag.Duration("window", 3*time.Second, "measurement window for diagnosis")
	telemetryAddr := flag.String("telemetry", "", "serve self-metrics (/metrics, /healthz) on this address, e.g. :9101 (empty = disabled)")
	def := controller.DefaultSweepConfig()
	sweepDeadline := flag.Duration("sweep-deadline", def.Deadline, "wall-clock budget for one full collection sweep; slow agents are abandoned past it (0 = unbounded)")
	sweepRetries := flag.Int("sweep-retries", def.Retries, "extra attempts per agent within a sweep after a transport failure")
	sweepBackoff := flag.Duration("sweep-backoff", def.BackoffBase, "first retry delay; doubles per retry with jitter")
	sweepBackoffMax := flag.Duration("sweep-backoff-max", def.BackoffMax, "cap on the grown retry delay (0 = uncapped)")
	breakerThreshold := flag.Int("breaker-threshold", def.BreakerThreshold, "consecutive failures that open an agent's breaker so sweeps skip it (0 = breaker off)")
	breakerCooldown := flag.Duration("breaker-cooldown", def.BreakerCooldown, "how long an open breaker waits before a single probe query")
	codec := flag.String("codec", wire.CodecV2, "wire codec to offer agents: v2 (binary, falls back to JSON per agent) or json (skip negotiation)")
	delta := flag.Bool("delta", false, "request delta-encoded sweep responses on v2 connections (changed attrs only)")
	flag.Parse()
	if *codec != wire.CodecV2 && *codec != wire.CodecJSON {
		log.Fatalf("bad -codec %q (want v2 or json)", *codec)
	}

	topo := core.NewTopology()
	ctl := controller.New(topo)
	ctl.Sweep = controller.SweepConfig{
		Deadline:         *sweepDeadline,
		Retries:          *sweepRetries,
		BackoffBase:      *sweepBackoff,
		BackoffMax:       *sweepBackoffMax,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	const tid = core.TenantID("operator")

	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if *telemetryAddr != "" {
		reg = telemetry.NewRegistry()
		tracer = ctl.EnableTelemetry(reg)
		diagnosis.EnableTelemetry(reg)
	}

	for _, spec := range strings.Split(*agents, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(spec), "=")
		if !ok {
			log.Fatalf("bad -agents entry %q (want machine=host:port)", spec)
		}
		mid := core.MachineID(name)
		client := controller.NewTCPClient(addr)
		client.Codec = *codec
		client.Delta = *delta
		if reg != nil {
			client.EnableTelemetry(reg, tracer)
		}
		if d, err := client.Ping(); err != nil {
			log.Fatalf("agent %s at %s unreachable: %v", name, addr, err)
		} else {
			log.Printf("agent %s at %s (rtt %v, codec %s)", name, addr, d, client.NegotiatedCodec())
		}
		metas, err := client.ListElements()
		if err != nil {
			log.Fatalf("list elements from %s: %v", name, err)
		}
		net := topo.Net(tid)
		for _, meta := range metas {
			net.Add(meta.ID, core.ElementInfo{Machine: mid, Kind: meta.Kind})
		}
		ctl.RegisterAgent(mid, client)
		log.Printf("  %d elements discovered", len(metas))
	}

	if reg != nil {
		started := time.Now()
		taddr, err := telemetry.Serve(*telemetryAddr, reg, func() telemetry.Health {
			return telemetry.Health{
				Component: "controller",
				Identity:  "controller",
				Elements:  len(ctl.TenantElements(tid, nil)),
				UptimeSec: time.Since(started).Seconds(),
			}
		})
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		log.Printf("telemetry on http://%s/metrics", taddr)
	}

	switch {
	case *advise:
		tk, err := operator.Diagnose(ctl, tid, *window)
		if err != nil {
			log.Fatalf("advise: %v", err)
		}
		if tk.Stack != nil {
			fmt.Println("stack: ", tk.Stack)
		}
		if tk.Chain != nil {
			fmt.Println("chains:", tk.Chain)
		}
		for _, r := range operator.Advise(tk) {
			fmt.Println("  ", r)
		}

	case *diagnose:
		rep, err := diagnosis.FindContentionAndBottleneck(ctl, tid, *window)
		if err != nil {
			log.Fatalf("diagnose: %v", err)
		}
		fmt.Println(rep)
		fmt.Printf("evidence: cpu %.0f%%, membus %.0f%%, pNIC rx %.0f Mbps / tx %.0f Mbps\n",
			rep.Evidence.CPUUtil*100, rep.Evidence.MembusUtil*100,
			rep.Evidence.PNICRxBps/1e6, rep.Evidence.PNICTxBps/1e6)
		for i, e := range rep.Ranked {
			if i >= 5 || e.Loss == 0 {
				break
			}
			fmt.Printf("  #%d %-30s %8.0f pkts lost\n", i+1, e.Element, e.Loss)
		}

	case *watch > 0:
		watchDrops(ctl, tid, *watch)

	default:
		// One-shot inventory dump.
		ids := ctl.TenantElements(tid, nil)
		recs, err := ctl.Sample(tid, ids)
		if err != nil {
			log.Printf("partial sample: %v", err)
		}
		sorted := make([]core.ElementID, 0, len(recs))
		for id := range recs {
			sorted = append(sorted, id)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, id := range sorted {
			rec := recs[id]
			fmt.Printf("%-32s rx %12.0f B  tx %12.0f B  drops %8.0f\n", id,
				rec.GetOr(core.AttrRxBytes, 0), rec.GetOr(core.AttrTxBytes, 0),
				rec.GetOr(core.AttrDropPackets, 0))
		}
	}
	os.Exit(0)
}

// watchDrops polls all elements and prints per-interval drop deltas.
func watchDrops(ctl *controller.Controller, tid core.TenantID, interval time.Duration) {
	ids := ctl.TenantElements(tid, nil)
	prev, err := ctl.Sample(tid, ids)
	if err != nil {
		log.Printf("partial sample: %v", err)
	}
	for {
		time.Sleep(interval)
		cur, err := ctl.Sample(tid, ids)
		if err != nil {
			log.Printf("partial sample: %v", err)
		}
		type row struct {
			id   core.ElementID
			loss float64
		}
		var rows []row
		for id, c := range cur {
			p, ok := prev[id]
			if !ok {
				continue
			}
			iv := controller.Interval{Prev: p, Cur: c}
			if loss := iv.DropPackets(); loss > 0 {
				rows = append(rows, row{id, loss})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].loss > rows[j].loss })
		if len(rows) == 0 {
			fmt.Printf("%s  no drops\n", time.Now().Format("15:04:05"))
		} else {
			fmt.Printf("%s  drops:", time.Now().Format("15:04:05"))
			for i, r := range rows {
				if i >= 4 {
					break
				}
				fmt.Printf("  %s=%0.f", r.id, r.loss)
			}
			fmt.Println()
		}
		prev = cur
	}
}
