// Command perfsight-lab regenerates every table and figure of the paper's
// evaluation (plus the motivating Figure 3) and prints the series and rows
// the paper reports. Use -run to select a subset, e.g. -run fig3,fig12.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"perfsight/internal/diagnosis"
	"perfsight/internal/experiments"
	"perfsight/internal/telemetry"
)

type experiment struct {
	name string
	run  func() (fmt.Stringer, bool, error)
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiments to run (fig3,fig8,fig9,fig10,fig11,fig12,fig13,table1,table2,fig15,fig16,ablations,fanout,history,anomaly,scale,chaos,mboxkinds) or 'all'")
	runs := flag.Int("runs", 10, "repetitions for the overhead experiments (the paper uses 100)")
	outDir := flag.String("out", "", "directory to write per-experiment .txt reports and .csv data series")
	telemetryAddr := flag.String("telemetry", "", "serve diagnosis self-metrics (/metrics, /healthz) while experiments run (empty = disabled)")
	parallel := flag.Bool("parallel", false, "run the scale experiment's fleet on the sharded parallel engine comparison (implied by the scale experiment; this flag sizes -domains workers to NumCPU)")
	domains := flag.Int("domains", 8, "scheduling domains for the scale experiment's parallel engine")
	chaosSpec := flag.String("chaos", "", "chaos fault schedule for the chaos experiment, e.g. 'crash:agent=m0@5.5s,heal=9.5s; skew:agent=m0,offset=250ms@500ms' (empty = built-in schedule)")
	flag.Parse()

	if _, err := experiments.ParseChaosSpec(*chaosSpec); err != nil {
		fmt.Fprintf(os.Stderr, "bad -chaos spec: %v\n", err)
		os.Exit(2)
	}

	if *telemetryAddr != "" {
		reg := telemetry.NewRegistry()
		diagnosis.EnableTelemetry(reg)
		started := time.Now()
		taddr, err := telemetry.Serve(*telemetryAddr, reg, func() telemetry.Health {
			return telemetry.Health{
				Component: "lab",
				Identity:  "perfsight-lab",
				UptimeSec: time.Since(started).Seconds(),
			}
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry on http://%s/metrics\n", taddr)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "create -out dir: %v\n", err)
			os.Exit(1)
		}
	}

	all := []experiment{
		{"fig3", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig3(experiments.DefaultFig3Config())
			if err != nil {
				return nil, false, err
			}
			ok := r.SlopeMbpsPerGBps < -300 && r.SlopeMbpsPerGBps > -600 && r.PeakNetGbps > 9
			return r, ok, nil
		}},
		{"fig8", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig8(experiments.DefaultFig8Config())
			return r, r != nil && r.AllPhasesCorrect(), err
		}},
		{"fig9", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig9(21)
			return r, r != nil && r.ShapeCorrect(), err
		}},
		{"fig10", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig10()
			return r, r != nil && r.Correct(), err
		}},
		{"fig11", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig11()
			return r, r != nil && r.Correct(), err
		}},
		{"fig12", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig12()
			return r, r != nil && r.AllCorrect(), err
		}},
		{"fig13", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig13()
			return r, r != nil && r.Correct(), err
		}},
		{"table1", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunTable1()
			return r, r != nil && r.AllCorrect(), err
		}},
		{"table2", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunTable2(*runs)
			return r, r != nil && r.Correct(), err
		}},
		{"fig15", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig15(*runs / 2)
			return r, r != nil && r.Correct(), err
		}},
		{"fig16", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFig16(nil, time.Second)
			return r, r != nil && r.ShapeCorrect(), err
		}},
		{"ablations", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunAblations()
			return r, r != nil && r.AllHold(), err
		}},
		{"fanout", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunFanout(8, 300*time.Millisecond)
			return r, r != nil && r.ShapeCorrect(), err
		}},
		{"history", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunHistoryReplay()
			return r, r != nil && r.Match(), err
		}},
		{"anomaly", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunAnomalyLab()
			return r, r != nil && r.Correct(), err
		}},
		{"scale", func() (fmt.Stringer, bool, error) {
			workers := 1
			if *parallel {
				workers = runtime.NumCPU()
				if workers > 8 {
					workers = 8
				}
			}
			r, err := experiments.RunScale(experiments.ScaleConfig{
				Domains: *domains,
				Workers: workers,
			})
			return r, r != nil && r.Deterministic(), err
		}},
		{"chaos", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunChaosLab(*chaosSpec)
			return r, r != nil && r.AllCorrect(), err
		}},
		{"mboxkinds", func() (fmt.Stringer, bool, error) {
			r, err := experiments.RunMboxKinds()
			return r, r != nil && r.AllCorrect(), err
		}},
	}

	want := map[string]bool{}
	if *runFlag != "all" {
		for _, n := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	failures := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		fmt.Printf("==== %s ====\n", e.name)
		start := time.Now()
		r, ok, err := e.run()
		if err != nil {
			fmt.Printf("ERROR: %v\n\n", err)
			failures++
			continue
		}
		fmt.Print(r)
		status := "REPRODUCED"
		if !ok {
			status = "SHAPE MISMATCH"
			failures++
		}
		fmt.Printf("[%s in %.1fs]\n\n", status, time.Since(start).Seconds())
		if *outDir != "" {
			txt := filepath.Join(*outDir, e.name+".txt")
			if err := os.WriteFile(txt, []byte(r.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", txt, err)
			}
			if c, okCSV := r.(experiments.CSVer); okCSV {
				csv := filepath.Join(*outDir, e.name+".csv")
				if err := os.WriteFile(csv, []byte(c.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "write %s: %v\n", csv, err)
				}
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
