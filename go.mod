module perfsight

go 1.22
