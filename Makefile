# Pre-PR check: everything here must pass before sending a change.
#   make check        vet + build + race tests
#   make bench        telemetry overhead benchmarks (EXPERIMENTS.md table)
#   make all          both

GO ?= go

.PHONY: all check vet build test bench

all: check bench

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Telemetry self-overhead: counter/histogram primitives plus the
# instrumented-vs-uninstrumented agent query path and controller sweep
# (budget: ~5%).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetry|BenchmarkUninstrumentedQuery|BenchmarkInstrumentedQuery|BenchmarkUninstrumentedSweep|BenchmarkInstrumentedSweep' -benchtime 1s .
