# Pre-PR check: everything here must pass before sending a change.
#   make check        vet + build + race tests
#   make bench          telemetry overhead benchmarks (EXPERIMENTS.md table)
#   make bench-wire     codec v1-vs-v2 benchmarks + alloc/size budget gates
#   make bench-history  flight-recorder benchmarks + append alloc budget gate
#   make bench-core     record/schema benchmarks + record alloc budget gate
#   make bench-anomaly  anomaly-pipeline benchmarks + sweep-eval alloc budget gate
#   make bench-ingest   push-ingest throughput floor + drain alloc budget gate
#   make bench-sketch   flow-sketch hot-path alloc gate + 1M-flow memory lab
#   make bench-trace    trace-spine span recording alloc gate + benchmarks
#   make bench-sim      tick-engine alloc gate + serial/parallel tick benchmarks
#   make all            everything

GO ?= go

.PHONY: all check vet build test bench bench-wire bench-history bench-core bench-anomaly bench-ingest bench-sketch bench-trace bench-sim

all: check bench bench-wire bench-history bench-core bench-anomaly bench-ingest bench-sketch bench-trace bench-sim

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Telemetry self-overhead: counter/histogram primitives plus the
# instrumented-vs-uninstrumented agent query path and controller sweep
# (budget: ~5%).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetry|BenchmarkUninstrumentedQuery|BenchmarkInstrumentedQuery|BenchmarkUninstrumentedSweep|BenchmarkInstrumentedSweep' -benchtime 1s .

# Wire codec v2 vs JSON: the budget tests fail the build when a change
# regresses the v2 round trip past testdata/v2_alloc_budget.txt or past
# the relative size/alloc floors; the benchmarks print the comparison
# (EXPERIMENTS.md wire table).
bench-wire:
	$(GO) test ./internal/wire/ -run 'TestV2RoundTripAllocBudget|TestV2VsJSONSizeAndAllocs' -count 1 -v
	$(GO) test -run '^$$' -bench 'BenchmarkWireCodec|BenchmarkSweepTCP' -benchtime 1s -benchmem .

# Flight recorder: the budget test fails the build when a warmed-series
# Append starts allocating (internal/history/testdata/
# append_alloc_budget.txt); the retention test proves resident points stay
# under the configured bound; the benchmarks print write/read-path costs.
bench-history:
	$(GO) test ./internal/history/ -run 'TestAppendAllocBudget|TestRetentionBoundsResident' -count 1 -v
	$(GO) test ./internal/history/ -run '^$$' -bench 'BenchmarkHistory' -benchtime 1s -benchmem

# Statistics schema: the budget test fails the build when Record.Get or
# Record.SubInto start allocating (internal/core/testdata/
# record_alloc_budget.txt); the benchmarks compare AttrID lookup against
# the pre-schema string-scan baseline (EXPERIMENTS.md schema table).
bench-core:
	$(GO) test ./internal/core/ -run 'TestRecordAllocBudget|TestSuccessorsAllocFreeSingleChain' -count 1 -v
	$(GO) test ./internal/core/ -run '^$$' -bench 'BenchmarkRecord|BenchmarkSuccessorsSingleChain|BenchmarkKindFromString' -benchtime 1s -benchmem

# Anomaly pipeline: the budget test fails the build when a quiet
# steady-state AfterSweep evaluation starts allocating (internal/anomaly/
# testdata/eval_alloc_budget.txt); the benchmarks print the per-sweep and
# per-series evaluation cost (EXPERIMENTS.md anomaly table).
bench-anomaly:
	$(GO) test ./internal/anomaly/ -run 'TestEvalAllocBudget' -count 1 -v
	$(GO) test ./internal/anomaly/ -run '^$$' -bench 'BenchmarkPipeline' -benchtime 1s -benchmem

# Push ingest: the throughput test fails the build when the queue→store
# path sustains under 10k element-updates/s; the alloc test fails when a
# steady-state push/take/append cycle allocates past internal/ingest/
# testdata/ingest_alloc_budget.txt; the benchmarks print pipeline and
# queue costs (EXPERIMENTS.md ingest table).
bench-ingest:
	$(GO) test ./internal/ingest/ -run 'TestIngestSustains10k|TestIngestAllocBudget' -count 1 -v
	$(GO) test ./internal/ingest/ -run '^$$' -bench 'BenchmarkIngestPipeline|BenchmarkQueue' -benchtime 1s -benchmem

# Flow sketch: the alloc test fails the build when a hot-path FlowSketch
# Update allocates past internal/dataplane/testdata/
# sketch_alloc_budget.txt; the 1M-flow lab fails when sketch memory stops
# being ≥100× below the legacy per-flow enumeration, heavy-hitter top-k
# loses exactness, or estimates exceed the ε·N bound; the rule-parse
# alloc test gates the legacy enumeration parser at zero. The benchmarks
# print the hot-path and encode costs (EXPERIMENTS.md sketch table).
bench-sketch:
	$(GO) test ./internal/dataplane/ -run 'TestSketchUpdateAllocBudget|TestSketchMillionFlowsLab' -count 1 -v
	$(GO) test ./internal/agent/ -run 'TestParseRuleLineAllocBudget' -count 1 -v
	$(GO) test ./internal/dataplane/ -run '^$$' -bench 'BenchmarkSketch' -benchtime 1s -benchmem
	$(GO) test ./internal/agent/ -run '^$$' -bench 'BenchmarkOVSRuleParse' -benchtime 1s -benchmem

# Trace spine: the alloc test fails the build when recording one full
# query trace (pooled begin, stage spans, summary publish, store keep)
# allocates past internal/telemetry/testdata/span_alloc_budget.txt; the
# benchmarks print the steady-state and contended costs against the
# pre-refactor map-per-trace baseline (EXPERIMENTS.md trace table).
bench-trace:
	$(GO) test ./internal/telemetry/ -run 'TestSpanAllocBudget' -count 1 -v
	$(GO) test ./internal/telemetry/ -run '^$$' -bench 'BenchmarkTrace|BenchmarkSpanStore' -benchtime 1s -benchmem

# Tick engine: the alloc test fails the build when a steady-state serial
# engine tick allocates past internal/sim/testdata/tick_alloc_budget.txt;
# the race-enabled run re-proves the sharded two-phase engine's worker
# handoff and chaos scheduling under the detector; the benchmarks print
# serial-vs-parallel per-tick cost (EXPERIMENTS.md parallel table).
bench-sim:
	$(GO) test ./internal/sim/ -run 'TestTickAllocBudget' -count 1 -v
	$(GO) test -race ./internal/sim/ ./internal/experiments/ -run 'TestParallelEngine|TestChaos|TestParallelDeterminismGolden|TestRunScaleSmall' -count 1
	$(GO) test ./internal/sim/ -run '^$$' -bench 'BenchmarkEngineTick|BenchmarkParallelEngineTick' -benchtime 1s -benchmem
